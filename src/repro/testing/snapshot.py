"""Deterministic stats-snapshot machinery for accounting regressions.

The observability layer promises to *read* the simulated accounting without
ever writing it.  That promise is checked against a deterministic sweep: 8
seeded tables x 8 queries each, every query executed 12 ways — once through
each of the four oracle layouts' own executors, plus each layout's
(pruning-off, pruning-on) twin pair — for **768 executions** total, each
reduced to a :func:`stats_signature` (every ``ExecutionStats`` field except
the wall clock, which real time perturbs by definition).

Two regressions drive it:

* **byte-identical accounting** — the full sweep collected with tracing
  and metrics off equals, entry for entry, the sweep collected fully
  enabled (``tests/obs/test_accounting_identity.py``);
* **EXPLAIN ANALYZE exactness** — for every entry, the per-operator rows'
  simulated io/cpu sums reproduce the execution's totals bit for bit
  (``tests/obs/test_analyze.py``).

Everything is deterministic given ``seed``; executions within one sweep
share each layout's storage (so buffer-pool warmth is part of the
signature, identically on both sides of a comparison).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from ..core.query import Query
from ..layouts import BuildContext
from ..plan.stats import ExecutionStats
from ..storage.table_data import ColumnTable
from .oracle import (
    ORACLE_LAYOUTS,
    pruning_executors,
    random_query,
    random_table,
    random_workload,
)

__all__ = [
    "SNAPSHOT_N_ENTRIES",
    "STATS_SIGNATURE_FIELDS",
    "SnapshotCase",
    "SnapshotEntry",
    "collect_stats_snapshot",
    "iter_snapshot_cases",
    "stats_signature",
]

#: Every ExecutionStats field except the real-time wall clock.
STATS_SIGNATURE_FIELDS: Tuple[str, ...] = tuple(
    f.name
    for f in dataclasses.fields(ExecutionStats)
    if f.name != "wall_time_s"
)

#: 8 tables x 8 queries x (4 oracle executors + 4 layouts x 2 pruning twins).
SNAPSHOT_N_TABLES = 8
SNAPSHOT_QUERIES_PER_TABLE = 8
SNAPSHOT_EXECUTIONS_PER_QUERY = 12
SNAPSHOT_N_ENTRIES = (
    SNAPSHOT_N_TABLES
    * SNAPSHOT_QUERIES_PER_TABLE
    * SNAPSHOT_EXECUTIONS_PER_QUERY
)


def stats_signature(stats: ExecutionStats) -> Tuple[Any, ...]:
    """The execution's exact accounting, minus the wall clock."""
    return tuple(getattr(stats, name) for name in STATS_SIGNATURE_FIELDS)


@dataclass(frozen=True)
class SnapshotCase:
    """One execution of the sweep, not yet run."""

    table_index: int
    query_index: int
    layout: str
    mode: str  # "oracle" | "pruning-off" | "pruning-on"
    executor: Any
    table: ColumnTable
    query: Query

    @property
    def label(self) -> str:
        return (
            f"t{self.table_index}/q{self.query_index}"
            f"/{self.layout}/{self.mode}"
        )


@dataclass(frozen=True)
class SnapshotEntry:
    """One executed case, reduced to its accounting signature."""

    label: str
    signature: Tuple[Any, ...]


def iter_snapshot_cases(
    n_tables: int = SNAPSHOT_N_TABLES,
    queries_per_table: int = SNAPSHOT_QUERIES_PER_TABLE,
    seed: int = 0,
    ctx: Optional[BuildContext] = None,
) -> Iterator[SnapshotCase]:
    """Yield the sweep's cases in their one deterministic order.

    Cases sharing a table also share its four built layouts (and their
    buffer pools); consumers must execute cases in yield order for
    signatures to be comparable across sweeps.
    """
    if ctx is None:
        ctx = BuildContext(file_segment_bytes=2048, schism_sample_size=100)
    for table_index in range(n_tables):
        rng = np.random.default_rng(seed + 7919 * (table_index + 1))
        table = random_table(rng, n_tuples=int(rng.integers(150, 401)))
        workload = random_workload(rng, table, n_queries=5)
        layouts = [
            (name, make().build(table, workload, ctx))
            for name, make in ORACLE_LAYOUTS
        ]
        queries = [
            random_query(rng, table, label=f"snap-{table_index}-{i}")
            for i in range(queries_per_table)
        ]
        for query_index, query in enumerate(queries):
            for name, layout in layouts:
                yield SnapshotCase(
                    table_index, query_index, name, "oracle",
                    layout.executor, table, query,
                )
                twins = pruning_executors(layout)
                if twins is None:  # pragma: no cover - all oracle layouts twin
                    continue
                for mode, executor in zip(("pruning-off", "pruning-on"), twins):
                    yield SnapshotCase(
                        table_index, query_index, name, mode,
                        executor, table, query,
                    )


def run_case(case: SnapshotCase) -> ExecutionStats:
    """Execute one case and return its stats (engine-shape agnostic)."""
    outcome = case.executor.execute(case.query)
    if isinstance(outcome, tuple):
        return outcome[1]
    return case.executor.last_stats


def collect_stats_snapshot(
    n_tables: int = SNAPSHOT_N_TABLES,
    queries_per_table: int = SNAPSHOT_QUERIES_PER_TABLE,
    seed: int = 0,
    ctx: Optional[BuildContext] = None,
) -> List[SnapshotEntry]:
    """Run the full sweep and return its ordered accounting signatures."""
    return [
        SnapshotEntry(label=case.label, signature=stats_signature(run_case(case)))
        for case in iter_snapshot_cases(n_tables, queries_per_table, seed, ctx)
    ]
