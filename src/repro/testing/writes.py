"""Write-workload generator and the dense numpy shadow oracle.

The shadow is the write path's ground truth: a plain dict of dense numpy
columns plus one boolean visibility mask *per committed version*, maintained
independently of the engine (values are recorded when the generator decides
them, never read back from the table under test).  After any sequence of
inserts / deletes / updates — including crash-replay and compaction — a
snapshot read ``AS OF`` version ``V`` must match the shadow's view at ``V``
exactly: same tids, same projected values, same dtypes.

:func:`apply_random_batch` mutates a :class:`~repro.txn.TransactionalTable`
and its :class:`ShadowTable` in lockstep from one seeded RNG;
:func:`verify_against_shadow` diffs every retained version under a handful
of random queries (plus the full scan, which exercises the snapshot
valid-mask path that predicates never touch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.query import Query
from ..plan.result import ResultSet
from ..storage.table_data import ColumnTable

__all__ = [
    "ShadowTable",
    "WriteWorkloadConfig",
    "apply_random_batch",
    "random_rows",
    "verify_against_shadow",
]


@dataclass(slots=True)
class WriteWorkloadConfig:
    """Shape of one seeded write workload."""

    n_batches: int = 6
    min_ops: int = 1
    max_ops: int = 3
    min_insert_rows: int = 4
    max_insert_rows: int = 24
    max_delete_rows: int = 12
    max_update_rows: int = 8
    value_range: int = 1_000
    p_insert: float = 0.5
    p_delete: float = 0.25
    p_update: float = 0.25


class ShadowTable:
    """Dense, engine-independent mirror of a transactional table.

    Values are append-only (updates re-insert under fresh tids, mirroring
    the tid discipline of the real write path); visibility history is one
    frozen boolean mask per committed version.
    """

    def __init__(self, table: ColumnTable):
        self.schema = table.schema
        self.columns: Dict[str, np.ndarray] = {
            name: table.column(name).copy()
            for name in table.schema.attribute_names
        }
        self.visible = np.ones(table.n_tuples, dtype=bool)
        #: version -> visibility mask at that commit.
        self.history: Dict[int, np.ndarray] = {}

    @property
    def n_tuples(self) -> int:
        return len(self.visible)

    def snapshot(self, version: int) -> None:
        """Freeze the current visibility as the view at ``version``."""
        self.history[version] = self.visible.copy()

    # ------------------------------------------------------------- writes

    def insert(self, rows: Dict[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(rows.values())))
        tids = np.arange(self.n_tuples, self.n_tuples + n, dtype=np.int64)
        for name in self.schema.attribute_names:
            values = np.asarray(rows[name]).astype(
                self.columns[name].dtype, copy=False
            )
            self.columns[name] = np.concatenate([self.columns[name], values])
        self.visible = np.concatenate([self.visible, np.ones(n, dtype=bool)])
        return tids

    def delete(self, tids: np.ndarray) -> None:
        self.visible[np.asarray(tids, dtype=np.int64)] = False

    def delete_where(
        self,
        where: Dict[str, Tuple[float, float]],
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Predicate delete; ``limit`` restricts targets to tids below it
        (the committed watermark — matching the table's statement-level
        visibility, which never targets same-batch inserts)."""
        mask = self.visible.copy()
        if limit is not None:
            mask[limit:] = False
        for name, (lo, hi) in where.items():
            mask &= (self.columns[name] >= lo) & (self.columns[name] <= hi)
        doomed = np.nonzero(mask)[0].astype(np.int64)
        self.visible[doomed] = False
        return doomed

    def update(
        self, assignments: Dict[str, object], tids: np.ndarray
    ) -> np.ndarray:
        tids = np.asarray(tids, dtype=np.int64)
        rows = {
            name: self.columns[name][tids]
            for name in self.schema.attribute_names
        }
        for name, value in assignments.items():
            replacement = np.asarray(value)
            if replacement.ndim == 0:
                replacement = np.full(
                    len(tids), value, dtype=self.columns[name].dtype
                )
            rows[name] = replacement
        self.visible[tids] = False
        return self.insert(rows)

    # -------------------------------------------------------------- reads

    def mask_at(self, version: int) -> np.ndarray:
        """Visibility at ``version``, padded with False for later rows."""
        mask = self.history[version]
        if len(mask) < self.n_tuples:
            padded = np.zeros(self.n_tuples, dtype=bool)
            padded[:len(mask)] = mask
            return padded
        return mask

    def query(self, query: Query, version: int) -> ResultSet:
        mask = self.mask_at(version).copy()
        for name, interval in query.where.items():
            column = self.columns[name]
            mask &= (column >= interval.lo) & (column <= interval.hi)
        tids = np.nonzero(mask)[0].astype(np.int64)
        return ResultSet(
            tids, {name: self.columns[name][tids] for name in query.select}
        )


def random_rows(
    rng: np.random.Generator, shadow: ShadowTable, n: int, value_range: int
) -> Dict[str, np.ndarray]:
    return {
        name: rng.integers(0, value_range, n).astype(
            shadow.columns[name].dtype
        )
        for name in shadow.schema.attribute_names
    }


def apply_random_batch(
    txn,
    shadow: ShadowTable,
    rng: np.random.Generator,
    config: WriteWorkloadConfig,
) -> int:
    """One seeded uncommitted batch applied to table and shadow in lockstep.

    Returns the number of operations buffered; the caller commits (or
    crashes) and then calls ``shadow.snapshot(version)`` with the committed
    version.  The shadow is mutated eagerly, so on a simulated crash the
    caller must rebuild it — which is exactly what the crash tests do.
    """
    n_ops = int(rng.integers(config.min_ops, config.max_ops + 1))
    names = list(shadow.schema.attribute_names)
    committed_n = txn.data.n_tuples
    for _ in range(n_ops):
        # Delete/update targets resolve against the last committed state
        # (the table never targets same-batch inserts), so clamp candidates
        # to the committed watermark.
        visible = np.nonzero(shadow.visible[:committed_n])[0]
        roll = rng.random()
        if roll < config.p_insert or len(visible) == 0:
            n = int(rng.integers(
                config.min_insert_rows, config.max_insert_rows + 1
            ))
            rows = random_rows(rng, shadow, n, config.value_range)
            got = txn.insert(rows)
            expected = shadow.insert(rows)
            assert np.array_equal(got, expected), (got, expected)
        elif roll < config.p_insert + config.p_delete:
            if rng.random() < 0.5:
                # Predicate delete: exercises target resolution in the table.
                name = names[int(rng.integers(len(names)))]
                lo = int(rng.integers(0, config.value_range))
                hi = lo + int(rng.integers(0, config.value_range // 4))
                txn.delete(where={name: (lo, hi)})
                shadow.delete_where({name: (lo, hi)}, limit=committed_n)
            else:
                k = int(rng.integers(
                    1, min(config.max_delete_rows, len(visible)) + 1
                ))
                tids = rng.choice(visible, size=k, replace=False)
                txn.delete(tids=tids)
                shadow.delete(tids)
        else:
            k = int(rng.integers(
                1, min(config.max_update_rows, len(visible)) + 1
            ))
            tids = np.sort(rng.choice(visible, size=k, replace=False))
            assignments = {
                names[int(rng.integers(len(names)))]:
                    int(rng.integers(0, config.value_range))
            }
            got = txn.update(assignments, tids=tids)
            expected = shadow.update(assignments, tids)
            assert np.array_equal(got, expected), (got, expected)
    return n_ops


def _diff(result: ResultSet, expected: ResultSet, label: str) -> Optional[str]:
    if not np.array_equal(result.tuple_ids, expected.tuple_ids):
        return (
            f"{label}: tids differ ({result.n_tuples} vs "
            f"{expected.n_tuples} tuples)"
        )
    for name, values in expected.columns.items():
        got = result.columns[name]
        if got.dtype != values.dtype:
            return f"{label}: column {name} dtype {got.dtype} != {values.dtype}"
        if not np.array_equal(got, values):
            return f"{label}: column {name} values differ"
    return None


def verify_against_shadow(
    txn,
    shadow: ShadowTable,
    rng: np.random.Generator,
    n_queries: int = 2,
    value_range: int = 1_000,
    versions: Optional[Tuple[int, ...]] = None,
) -> List[str]:
    """Diff the table against the shadow at every recorded version.

    For each version: the full scan (no WHERE — the valid-mask path) plus
    ``n_queries`` random range queries.  Returns human-readable mismatch
    strings; empty means oracle-exact.
    """
    mismatches: List[str] = []
    names = list(shadow.schema.attribute_names)
    check_versions = (
        versions if versions is not None else tuple(sorted(shadow.history))
    )
    floor = txn.manager.floor_version()
    for version in check_versions:
        if version < floor:
            continue  # pruned away; no longer pinnable
        meta = txn.data.meta
        queries = [Query.build(meta, names, {}, label=f"v{version}-full")]
        for i in range(n_queries):
            name = names[int(rng.integers(len(names)))]
            lo = int(rng.integers(0, value_range))
            hi = lo + int(rng.integers(0, value_range - lo + 1))
            interval = meta.interval(name)
            lo = max(lo, int(interval.lo))
            hi = min(max(hi, lo), int(interval.hi))
            if hi < lo:
                lo = hi = int(interval.lo)
            queries.append(Query.build(
                meta, names, {name: (lo, hi)}, label=f"v{version}-q{i}"
            ))
        for query in queries:
            result, _ = txn.execute(query, as_of=version)
            expected = shadow.query(query, version)
            problem = _diff(result, expected, f"{query.label}")
            if problem is not None:
                mismatches.append(problem)
    return mismatches
