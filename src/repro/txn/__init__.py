"""The write path: WAL, delta segments, MVCC snapshots, and compaction.

Layering (top to bottom):

* :class:`TransactionalTable` — buffers typed writes, group-commits them
  through the WAL, serves MVCC snapshot reads (``AS OF`` time travel) by
  merging per-version delta state over the unmodified base engines.
* :class:`WriteAheadLog` — append-only, CRC-framed batches persisted as
  blobs through :mod:`repro.storage.blob` (one blob put per group commit is
  the simulated fsync); deterministic replay that ignores a torn tail.
* :class:`DeltaSegment` / :class:`DeltaState` / :class:`DeltaStore` —
  committed inserts as immutable columnar segments with zone maps;
  per-version tombstone sets; persistence + simulated-device accounting.
* :class:`DeltaCompactor` — folds deltas back into base partitions through
  the same verified, versioned swap the adaptive daemon's migrations use,
  under a bytes-rewritten budget.
"""

from .compactor import CompactionReport, DeltaCompactor
from .delta import DeltaSegment, DeltaState, DeltaStore
from .table import TransactionalTable
from .wal import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_UPDATE,
    WalRecord,
    WalStats,
    WriteAheadLog,
)

__all__ = [
    "CompactionReport",
    "DeltaCompactor",
    "DeltaSegment",
    "DeltaState",
    "DeltaStore",
    "KIND_DELETE",
    "KIND_INSERT",
    "KIND_UPDATE",
    "TransactionalTable",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
]
