"""Delta compaction: fold committed writes back into base partitions.

The :class:`DeltaCompactor` is the write path's counterpart to the adaptive
daemon's scoped migrations, and it rides the same machinery: it rebuilds the
*touched* base partitions (those holding tombstoned tuples) without their
dead rows, materializes each folded delta segment as a new base partition
covering the full schema for its live tids, and lands everything through one
atomic, verified :meth:`~repro.storage.partition_manager.PartitionManager.
swap_partitions` — so a compaction is abort-safe and versioned exactly like
a layout migration, and pinned older snapshots keep reading the retired
files until :meth:`prune_retired`.

Work is greedily packed under a bytes-rewritten budget (the same notion as
the daemon's ``bytes_budget_per_cycle``): delta segments first (each one
folded removes a per-scan blob read for every future query), then
tombstone-dirty partitions by dead-row count.  A partial pass leaves the
unfolded segments and unresolved tombstones in the post-compaction
:class:`~repro.txn.delta.DeltaState`, to be picked up by the next cycle.

Folded segments' blobs are *retained*: older pinned versions and ``AS OF``
reads still merge them.  The WAL is truncated only when compaction leaves
the delta state fully empty — that is the one point where the base blobs
alone reconstruct the table, i.e. a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import TransactionError
from ..obs import tracer as obs_tracer
from ..storage.physical import TID_EXPLICIT, SegmentSpec, build_physical_partition
from .delta import DeltaSegment, DeltaState

__all__ = ["CompactionReport", "DeltaCompactor"]


@dataclass(slots=True)
class CompactionReport:
    """What one compaction pass did (all sizes in accounted bytes)."""

    version: int = -1
    scope_pids: Tuple[int, ...] = ()
    n_new_partitions: int = 0
    n_segments_folded: int = 0
    n_tombstones_removed: int = 0
    n_tuples_dropped: int = 0
    bytes_rewritten: int = 0
    #: work skipped because it did not fit the budget this pass.
    n_segments_deferred: int = 0
    n_partitions_deferred: int = 0
    wal_truncated: bool = False

    @property
    def is_empty(self) -> bool:
        return self.version < 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "scope_pids": list(self.scope_pids),
            "n_new_partitions": self.n_new_partitions,
            "n_segments_folded": self.n_segments_folded,
            "n_tombstones_removed": self.n_tombstones_removed,
            "n_tuples_dropped": self.n_tuples_dropped,
            "bytes_rewritten": self.bytes_rewritten,
            "n_segments_deferred": self.n_segments_deferred,
            "n_partitions_deferred": self.n_partitions_deferred,
            "wal_truncated": self.wal_truncated,
        }


@dataclass(slots=True)
class _Plan:
    fold_segments: List[DeltaSegment] = field(default_factory=list)
    defer_segments: List[DeltaSegment] = field(default_factory=list)
    scope_pids: List[int] = field(default_factory=list)
    defer_pids: List[int] = field(default_factory=list)
    budget_left: float = float("inf")


class DeltaCompactor:
    """Folds delta segments and tombstones into base partitions."""

    def __init__(
        self,
        table,
        bytes_budget: Optional[int] = None,
        tid_storage: str = TID_EXPLICIT,
        verify: bool = True,
    ):
        if bytes_budget is not None and bytes_budget <= 0:
            raise TransactionError("compaction bytes_budget must be positive")
        self.table = table
        self.manager = table.manager
        self.bytes_budget = bytes_budget
        self.tid_storage = tid_storage
        self.verify = verify

    # ------------------------------------------------------------- planning

    def _plan(self, state: DeltaState) -> _Plan:
        plan = _Plan()
        if self.bytes_budget is not None:
            plan.budget_left = float(self.bytes_budget)
        # Delta segments first: folding one saves a blob read on every
        # subsequent scan, the best bytes-rewritten-per-benefit ratio.
        for segment in state.segments:
            if segment.n_bytes <= plan.budget_left:
                plan.fold_segments.append(segment)
                plan.budget_left -= segment.n_bytes
            else:
                plan.defer_segments.append(segment)
        tombs = state.tombstone_array()
        if not len(tombs):
            return plan
        dirty: List[Tuple[int, int, int]] = []  # (n_dead, n_bytes, pid)
        for pid in self.manager.pids():
            info = self.manager.info(pid)
            n_dead = int(np.isin(info.tuple_ids(), tombs).sum())
            if n_dead:
                dirty.append((n_dead, info.n_bytes, pid))
        dirty.sort(key=lambda item: (-item[0], item[2]))
        for n_dead, n_bytes, pid in dirty:
            if n_bytes <= plan.budget_left:
                plan.scope_pids.append(pid)
                plan.budget_left -= n_bytes
            else:
                plan.defer_pids.append(pid)
        return plan

    # ------------------------------------------------------------ execution

    def run(self) -> CompactionReport:
        """One compaction pass over the current committed delta state."""
        tracer = obs_tracer()
        if not tracer.enabled:
            return self._run()
        with tracer.span("txn.compaction") as span:
            report = self._run()
            if not report.is_empty:
                span.set(
                    version=report.version,
                    bytes_rewritten=report.bytes_rewritten,
                    n_segments_folded=report.n_segments_folded,
                )
            return report

    def _run(self) -> CompactionReport:
        table = self.table
        with table._lock:
            state = table.delta_state()
            if not state.segments and not state.tombstones:
                return CompactionReport()
            plan = self._plan(state)
            if not plan.fold_segments and not plan.scope_pids:
                return CompactionReport(
                    n_segments_deferred=len(plan.defer_segments),
                    n_partitions_deferred=len(plan.defer_pids),
                )
            tombs = state.tombstone_array()

            physicals = []
            folded_tids: List[np.ndarray] = []
            removed_tombstones: set = set()
            n_dropped = 0
            next_pid = self.manager.next_pid()
            schema_attrs = tuple(table.schema.attribute_names)
            # A layout migration run while deltas were outstanding may have
            # absorbed appended rows into base partitions already; folding
            # those again would double-place their tids.  They only need the
            # base-validity event, not a new partition.
            covered = np.zeros(table.data.n_tuples, dtype=bool)
            for pid in self.manager.pids():
                covered[self.manager.info(pid).tuple_ids()] = True
            for segment in plan.fold_segments:
                dead = np.isin(segment.tids, tombs)
                removed_tombstones.update(
                    int(t) for t in segment.tids[dead]
                )
                live = segment.tids[~dead]
                if not len(live):
                    continue
                folded_tids.append(live)
                fresh = live[~covered[live]]
                if not len(fresh):
                    continue
                physicals.append(build_physical_partition(
                    next_pid,
                    [SegmentSpec(attributes=schema_attrs, tuple_ids=fresh)],
                    table.data,
                    self.tid_storage,
                ))
                next_pid += 1
            dropped_tids: List[np.ndarray] = []
            for pid in plan.scope_pids:
                info = self.manager.info(pid)
                dead_here = info.tuple_ids()[
                    np.isin(info.tuple_ids(), tombs)
                ]
                removed_tombstones.update(int(t) for t in dead_here)
                dropped_tids.append(dead_here)
                n_dropped += len(dead_here)
                specs = []
                for attrs, seg_tids, replica in zip(
                    info.segment_attrs, info.segment_tids,
                    info.segment_replicas,
                ):
                    if replica:
                        continue
                    live = seg_tids[~np.isin(seg_tids, tombs)]
                    if len(live):
                        specs.append(SegmentSpec(
                            attributes=tuple(attrs), tuple_ids=live
                        ))
                if specs:
                    physicals.append(build_physical_partition(
                        next_pid, specs, table.data, self.tid_storage,
                    ))
                    next_pid += 1

            infos = self.manager.swap_partitions(
                physicals, remove=plan.scope_pids, verify=self.verify
            )
            version = self.manager.catalog_version

            remaining_segments = tuple(
                s for s in state.segments if s not in set(plan.fold_segments)
            )
            remaining_tombstones = frozenset(
                state.tombstones - removed_tombstones
            )
            new_state = DeltaState(remaining_segments, remaining_tombstones)
            table.record_compaction(
                version,
                new_state,
                np.concatenate(folded_tids)
                if folded_tids else np.empty(0, np.int64),
                np.concatenate(dropped_tids)
                if dropped_tids else np.empty(0, np.int64),
            )

            truncated = False
            if (
                table.wal is not None
                and not remaining_segments
                and not remaining_tombstones
            ):
                # Checkpoint: base blobs alone now reconstruct the table.
                table.wal.truncate_through(table._applied_lsn)
                truncated = True

            # Refresh the backlog/delta gauges right after the fold, so a
            # /healthz scrape sees the checkpoint without waiting for the
            # next commit to republish.
            table._publish_wal()
            table._publish_txn()

            return CompactionReport(
                version=version,
                scope_pids=tuple(plan.scope_pids),
                n_new_partitions=len(infos),
                n_segments_folded=len(plan.fold_segments),
                n_tombstones_removed=len(removed_tombstones),
                n_tuples_dropped=n_dropped,
                bytes_rewritten=sum(info.n_bytes for info in infos),
                n_segments_deferred=len(plan.defer_segments),
                n_partitions_deferred=len(plan.defer_pids),
                wal_truncated=truncated,
            )

    def run_until_clean(self, max_passes: int = 32) -> List[CompactionReport]:
        """Repeat budgeted passes until the delta state is empty (or no
        progress is possible under the budget)."""
        reports: List[CompactionReport] = []
        for _ in range(max_passes):
            report = self.run()
            if report.is_empty:
                break
            reports.append(report)
            state = self.table.delta_state()
            if not state.segments and not state.tombstones:
                break
            if report.n_segments_folded == 0 and not report.scope_pids:
                break  # budget too small for any remaining unit of work
        return reports
