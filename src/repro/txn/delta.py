"""Columnar delta segments: where committed writes live until compaction.

Each group commit's inserted rows become one immutable, checksummed delta
segment blob (format-v2-style framing: magic + header CRC, explicit tuple
ids, row-major full-schema cells).  Deletes never touch segments — they
accumulate in per-version tombstone tid-sets (see
:class:`~repro.txn.table.TransactionalTable`); an update is a tombstone on
the old tid plus inserted rows under fresh tids.

Scans merge deltas at the transactional wrapper, not inside the engines:
the base engines stay byte-identical to seed, and the merge is uniformly
sound across all four of them.  Pruning still works — every segment carries
a zone map built at commit time, so a delta whose value range is disjoint
from the predicate is skipped without charging the simulated device, with
the skip counted in the same ``n_partitions_pruned`` ledger the base
catalog uses.

Simulated I/O: reading a delta charges
:meth:`~repro.storage.device.StorageDevice.read_delta` with the segment's
*accounted* bytes (tids + logical cell widths; framing and CRC bytes charge
nothing, mirroring base-partition accounting).
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.schema import TableSchema
from ..errors import ChecksumError, StorageError
from ..storage.format import segment_row_dtype
from ..storage.io_stats import IOStats

__all__ = ["DeltaSegment", "DeltaState", "DeltaStore"]

DELTA_MAGIC = b"JGSD"
DELTA_FORMAT_VERSION = 1

#: magic, format, segment id, n_tuples, header+body CRC.
_DELTA_HEADER = struct.Struct("<4sHQQI")


class DeltaSegment:
    """One committed batch of inserted rows, persisted and in memory.

    The in-memory arrays are the authoritative copy for merging (deltas are
    recent and small — exactly what a real system would pin in its memtable
    shadow); the blob exists for durability and for the simulated device to
    charge reads against.  ``n_bytes`` is the accounted size: ``8`` bytes of
    tid plus the schema's logical row width per tuple.
    """

    __slots__ = ("sid", "key", "tids", "columns", "zone_map", "n_bytes",
                 "version")

    def __init__(
        self,
        sid: int,
        key: str,
        tids: np.ndarray,
        columns: Dict[str, np.ndarray],
        schema: TableSchema,
        version: int = 0,
    ):
        self.sid = sid
        self.key = key
        self.tids = np.asarray(tids, dtype=np.int64)
        self.columns = columns
        self.version = version
        row_width = sum(spec.byte_width for spec in schema)
        self.n_bytes = len(self.tids) * (8 + row_width)
        self.zone_map: Dict[str, Tuple[float, float]] = {}
        if len(self.tids):
            for name, column in columns.items():
                self.zone_map[name] = (
                    float(column.min()), float(column.max())
                )

    @property
    def n_tuples(self) -> int:
        return len(self.tids)

    def zone_disjoint(
        self, attribute: str, lo: float, hi: float
    ) -> Optional[bool]:
        """Same contract as :meth:`PartitionInfo.zone_disjoint`: None when
        the attribute has no bounds here (cannot prune)."""
        bounds = self.zone_map.get(attribute)
        if bounds is None:
            return None
        zone_lo, zone_hi = bounds
        return zone_hi < lo or zone_lo > hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaSegment(sid={self.sid}, {self.n_tuples} tuples, "
            f"v{self.version})"
        )


class DeltaState:
    """Immutable per-version view of the write path's merge inputs.

    ``segments`` are the delta segments a scan at this version must union
    in; ``tombstones`` the tids it must mask out (of base *and* delta rows
    alike — an updated delta row is tombstoned like any other).  States are
    persistent-data-structure style: each commit derives the next state from
    the previous one, so older pinned versions keep their exact view.
    """

    __slots__ = ("segments", "tombstones", "_tombstone_array")

    def __init__(
        self,
        segments: Tuple[DeltaSegment, ...] = (),
        tombstones: FrozenSet[int] = frozenset(),
    ):
        self.segments = segments
        self.tombstones = tombstones
        self._tombstone_array: Optional[np.ndarray] = None

    def tombstone_array(self) -> np.ndarray:
        if self._tombstone_array is None:
            self._tombstone_array = np.fromiter(
                sorted(self.tombstones), dtype=np.int64,
                count=len(self.tombstones),
            )
        return self._tombstone_array

    def with_commit(
        self,
        new_segments: Tuple[DeltaSegment, ...] = (),
        new_tombstones: FrozenSet[int] = frozenset(),
    ) -> "DeltaState":
        return DeltaState(
            self.segments + tuple(new_segments),
            self.tombstones | new_tombstones,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaState({len(self.segments)} segments, "
            f"{len(self.tombstones)} tombstones)"
        )


class DeltaStore:
    """Persists delta segments through the manager's blob store + device."""

    def __init__(self, manager, key_prefix: str = "delta/"):
        self.manager = manager
        self.schema = manager.schema
        self.key_prefix = key_prefix
        self._row_dtype = segment_row_dtype(
            self.schema, self.schema.attribute_names
        )

    def _key(self, sid: int) -> str:
        return f"{self.key_prefix}d{sid:08d}.jigd"

    # -------------------------------------------------------------- write

    def write_segment(
        self,
        sid: int,
        tids: np.ndarray,
        columns: Dict[str, np.ndarray],
        version: int = 0,
    ) -> DeltaSegment:
        segment = DeltaSegment(
            sid, self._key(sid), tids, columns, self.schema, version
        )
        self.manager.store.put(segment.key, self.serialize(segment))
        self.manager.device.invalidate(segment.key)
        return segment

    def serialize(self, segment: DeltaSegment) -> bytes:
        body_parts = [np.ascontiguousarray(segment.tids, dtype="<i8").tobytes()]
        rows = np.zeros(segment.n_tuples, dtype=self._row_dtype)
        for name in self.schema.attribute_names:
            rows[name] = segment.columns[name]
        body_parts.append(rows.tobytes())
        body = b"".join(body_parts)
        head = _DELTA_HEADER.pack(
            DELTA_MAGIC, DELTA_FORMAT_VERSION, segment.sid,
            segment.n_tuples, 0,
        )[:-4]
        crc = zlib.crc32(body, zlib.crc32(head))
        return head + struct.pack("<I", crc) + body

    # --------------------------------------------------------------- read

    def deserialize(self, data: bytes) -> Tuple[int, np.ndarray, Dict[str, np.ndarray]]:
        if len(data) < _DELTA_HEADER.size:
            raise StorageError("delta segment: truncated header")
        magic, version, sid, n_tuples, stored_crc = (
            _DELTA_HEADER.unpack_from(data, 0)
        )
        if magic != DELTA_MAGIC:
            raise StorageError(f"delta segment: bad magic {magic!r}")
        if version != DELTA_FORMAT_VERSION:
            raise StorageError(f"delta segment: unknown format {version}")
        body = data[_DELTA_HEADER.size:]
        head = data[:_DELTA_HEADER.size - 4]
        if zlib.crc32(body, zlib.crc32(head)) != stored_crc:
            raise ChecksumError(f"delta segment {sid}: checksum mismatch")
        expected = n_tuples * (8 + self._row_dtype.itemsize)
        if len(body) < expected:
            raise StorageError(f"delta segment {sid}: truncated body")
        tids = np.frombuffer(body, dtype="<i8", count=n_tuples).copy()
        rows = np.frombuffer(
            body, dtype=self._row_dtype, count=n_tuples, offset=8 * n_tuples
        )
        columns = {
            name: np.ascontiguousarray(rows[name])
            for name in self.schema.attribute_names
        }
        return sid, tids, columns

    def charge_read(self, segment: DeltaSegment) -> IOStats:
        """Account one scan's read of a delta segment.

        Verifies the durable copy end-to-end through the fault path (get +
        checksum, within the manager's retry budget, backoff charged in
        simulated seconds like base-partition retries) and charges the
        device for the accounted bytes.  Raises
        :class:`~repro.errors.StorageError` if the segment stays unreadable
        — a delta is the *only* copy of its rows, so there is no degraded
        substitute.
        """
        policy = self.manager.retry_policy
        delta = IOStats()
        last_error: Optional[StorageError] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                delta.n_retries += 1
                delta.io_time_s += policy.delay_s(attempt - 1)
            try:
                data = self.manager.store.get(segment.key)
                self.deserialize(data)
            except StorageError as exc:
                last_error = exc
                continue
            delta.add(
                self.manager.device.read_delta(segment.key, segment.n_bytes)
            )
            return delta
        raise StorageError(
            f"delta segment {segment.sid} ({segment.key!r}) unreadable "
            f"after {policy.max_attempts} attempts: {last_error}"
        )

    def load_segment(self, sid: int, version: int = 0) -> DeltaSegment:
        """Rebuild a segment object from its blob (recovery path)."""
        data = self.manager.store.get(self._key(sid))
        stored_sid, tids, columns = self.deserialize(data)
        return DeltaSegment(
            stored_sid, self._key(stored_sid), tids, columns, self.schema,
            version,
        )

    def drop(self, segments) -> int:
        """Delete folded segments' blobs after a compaction commit."""
        dropped = 0
        for segment in segments:
            self.manager.store.delete(segment.key)
            self.manager.device.invalidate(segment.key)
            dropped += 1
        return dropped
