"""The transactional table: writes, snapshot reads, and time travel.

:class:`TransactionalTable` wraps one materialized layout with the write
path.  Writes buffer as typed WAL records; :meth:`commit` makes them
durable (one group-commit blob), lands inserted rows in a columnar
:class:`~repro.txn.delta.DeltaSegment`, folds deletes into the version's
tombstone set, and stamps the whole batch with a fresh catalog version via
:meth:`~repro.storage.partition_manager.PartitionManager.advance_version` —
so the catalog version is the one transaction timeline shared by writes,
adaptive swaps, and compaction.

Reads are MVCC: :meth:`execute` pins a
:class:`~repro.storage.partition_manager.CatalogSnapshot` (optionally at an
older version — ``AS OF``), runs the base engine against the snapshot's
frozen partition set, then merges the snapshot version's delta state on
top: tombstoned tids masked out, delta segments unioned in (zone-pruned
when the predicate allows, simulated device charged when not).  The merge
happens at this wrapper, uniformly above all four engines, so the base
engines stay byte-identical to seed for read-only workloads.

Tuple-id discipline: inserts take fresh tids at the high-water mark;
updates are delete + insert *under new tids* (a tid's cells are immutable
once written, which is what keeps base partitions, replicas, and zone maps
sound without rewrites).  Deleted tids stay physically present in base
partitions until a :class:`~repro.txn.compactor.DeltaCompactor` pass folds
them out.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.query import Query
from ..errors import TransactionError
from ..obs import tracer as obs_tracer
from ..plan.result import ResultSet
from ..plan.stats import ExecutionStats
from ..storage.partition_manager import CatalogSnapshot
from ..storage.table_data import ColumnTable
from .delta import DeltaState, DeltaStore
from .wal import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_UPDATE,
    WalRecord,
    WriteAheadLog,
)

__all__ = ["TransactionalTable"]


class TransactionalTable:
    """Write path + MVCC snapshot reads over one materialized layout."""

    def __init__(
        self,
        layout,
        data: ColumnTable,
        wal_enabled: bool = True,
        wal_prefix: str = "wal/",
        delta_prefix: str = "delta/",
    ):
        self.layout = layout
        self.manager = layout.manager
        self.data = data
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog(
                self.manager.store,
                data.schema,
                key_prefix=wal_prefix,
                retry_policy=self.manager.retry_policy,
            )
            if wal_enabled else None
        )
        self.delta_store = DeltaStore(self.manager, key_prefix=delta_prefix)
        #: rows [0, _base_n) were materialized into base partitions at build
        #: time; everything above arrived through the write path.
        self._base_n = data.n_tuples
        self._next_tid = data.n_tuples
        self._next_sid = 0
        self._lsn = 0  # mirrors the WAL's lsn when the WAL is disabled
        self._applied_lsn = 0
        self._pending: List[WalRecord] = []
        self._pending_doomed: set = set()
        #: version -> DeltaState; reads resolve the greatest key <= V, so
        #: versions minted by swaps/compactions between commits inherit the
        #: preceding state.
        self._states: Dict[int, DeltaState] = {
            self.manager.catalog_version: DeltaState()
        }
        self._state_versions: List[int] = [self.manager.catalog_version]
        #: compaction events: ``(version, tids_folded_into_base,
        #: base_tids_dropped)`` — the inputs to each version's base-domain
        #: valid mask.
        self._base_events: List[Tuple[int, np.ndarray, np.ndarray]] = []
        self._lock = threading.RLock()
        # Commit's meta rebind + column growth wait out in-flight reads so a
        # mid-scan engine never sees the tuple domain move under it.
        self._readers = 0
        self._readers_cv = threading.Condition()

    # ---------------------------------------------------------- properties

    @property
    def schema(self):
        return self.data.schema

    @property
    def current_version(self) -> int:
        return self.manager.catalog_version

    def versions(self) -> Tuple[int, ...]:
        """Versions with an explicit write/compaction state, oldest first.

        Any version in ``[manager.floor_version(), current_version]`` is
        pinnable; these are the ones where the visible row set changed
        through the write path.
        """
        with self._lock:
            return tuple(self._state_versions)

    def delta_state(self, version: Optional[int] = None) -> DeltaState:
        if version is None:
            version = self.manager.catalog_version
        return self._state_at(version)

    def _state_at(self, version: int) -> DeltaState:
        with self._lock:
            index = bisect_right(self._state_versions, version) - 1
            if index < 0:
                return DeltaState()
            return self._states[self._state_versions[index]]

    # -------------------------------------------------------------- writes

    def insert(self, rows: Mapping[str, Sequence]) -> np.ndarray:
        """Buffer full rows for insertion; returns their assigned tids."""
        with self._lock:
            columns = {
                name: np.asarray(rows[name]) if name in rows else None
                for name in self.schema.attribute_names
            }
            missing = [n for n, v in columns.items() if v is None]
            if missing:
                raise TransactionError(f"insert missing attributes: {missing}")
            lengths = {len(v) for v in columns.values()}
            if len(lengths) != 1:
                raise TransactionError(
                    f"insert columns disagree on length: {sorted(lengths)}"
                )
            n = lengths.pop()
            tids = np.arange(
                self._next_tid, self._next_tid + n, dtype=np.int64
            )
            self._next_tid += n
            self._append_record(KIND_INSERT, tids, columns)
            return tids

    def delete(
        self,
        tids: Optional[Sequence[int]] = None,
        where: Optional[Mapping] = None,
    ) -> np.ndarray:
        """Buffer deletes, by explicit tids or by a predicate over the last
        committed state; returns the doomed tids."""
        with self._lock:
            doomed = self._resolve_targets(tids, where)
            if len(doomed):
                self._append_record(KIND_DELETE, doomed)
                self._pending_doomed.update(int(t) for t in doomed)
            return doomed

    def update(
        self,
        assignments: Mapping[str, object],
        tids: Optional[Sequence[int]] = None,
        where: Optional[Mapping] = None,
    ) -> np.ndarray:
        """Buffer updates (delete + insert under fresh tids); returns the
        *new* tids carrying the updated rows."""
        bad = [n for n in assignments if n not in self.schema.attribute_names]
        if bad:
            raise TransactionError(f"update assigns unknown attributes: {bad}")
        with self._lock:
            doomed = self._resolve_targets(tids, where)
            if not len(doomed):
                return np.empty(0, dtype=np.int64)
            columns = self.data.gather(self.schema.attribute_names, doomed)
            for name, value in assignments.items():
                replacement = np.asarray(value)
                if replacement.ndim == 0:
                    replacement = np.full(
                        len(doomed), value,
                        dtype=self.data.column(name).dtype,
                    )
                columns[name] = replacement
            new_tids = np.arange(
                self._next_tid, self._next_tid + len(doomed), dtype=np.int64
            )
            self._next_tid += len(doomed)
            self._append_record(
                KIND_UPDATE, new_tids, columns, old_tids=doomed
            )
            self._pending_doomed.update(int(t) for t in doomed)
            return new_tids

    def _resolve_targets(
        self, tids: Optional[Sequence[int]], where: Optional[Mapping]
    ) -> np.ndarray:
        if (tids is None) == (where is None):
            raise TransactionError("pass exactly one of tids= or where=")
        if tids is not None:
            doomed = np.unique(np.asarray(tids, dtype=np.int64))
        else:
            mask = self._visible_mask(self.manager.catalog_version)
            for name, bounds in where.items():
                lo, hi = self._bounds(bounds)
                column = self.data.column(name)[:len(mask)]
                mask &= (column >= lo) & (column <= hi)
            doomed = np.nonzero(mask)[0].astype(np.int64)
        # Statement-level visibility: targets resolve against the last
        # committed state, minus anything this batch already doomed.
        if self._pending_doomed:
            doomed = doomed[
                ~np.isin(
                    doomed,
                    np.fromiter(
                        self._pending_doomed, dtype=np.int64,
                        count=len(self._pending_doomed),
                    ),
                )
            ]
        visible = self._visible_mask(self.manager.catalog_version)
        out_of_range = doomed[(doomed < 0) | (doomed >= len(visible))]
        if len(out_of_range):
            raise TransactionError(
                f"tids {out_of_range[:5].tolist()} are not committed rows"
            )
        return doomed[visible[doomed]]

    @staticmethod
    def _bounds(bounds) -> Tuple[float, float]:
        if hasattr(bounds, "lo"):
            return float(bounds.lo), float(bounds.hi)
        lo, hi = bounds
        return float(lo), float(hi)

    def _append_record(
        self,
        kind: str,
        tids: np.ndarray,
        columns: Optional[Mapping[str, np.ndarray]] = None,
        old_tids: Optional[np.ndarray] = None,
    ) -> WalRecord:
        if columns is not None:
            columns = {
                name: np.asarray(columns[name]).astype(
                    self.schema[name].np_dtype, copy=False
                )
                for name in self.schema.attribute_names
            }
        if self.wal is not None:
            record = self.wal.append(kind, tids, columns, old_tids)
        else:
            self._lsn += 1
            record = WalRecord(
                kind, self._lsn, np.asarray(tids, dtype=np.int64),
                dict(columns) if columns is not None else None,
                np.asarray(old_tids, dtype=np.int64)
                if old_tids is not None else None,
            )
        self._pending.append(record)
        return record

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def rollback(self) -> int:
        """Drop every buffered (uncommitted) write."""
        with self._lock:
            n = len(self._pending)
            self._pending.clear()
            self._pending_doomed.clear()
            if self.wal is not None:
                self.wal.discard_pending()
            return n

    # -------------------------------------------------------------- commit

    def commit(self) -> int:
        """Group-commit the buffered batch; returns the new catalog version.

        Ordering is the WAL contract: the batch blob lands (durability)
        *before* any in-memory state changes.  With nothing pending this is
        a no-op returning the current version.
        """
        with self._lock:
            if not self._pending:
                return self.manager.catalog_version
            records = list(self._pending)
            self._pending.clear()
            self._pending_doomed.clear()
            if self.wal is not None:
                self.wal.commit()
                self._publish_wal()
            return self._apply(records)

    def replay_wal(self) -> int:
        """Crash recovery: re-apply every durable WAL batch not yet applied.

        Call on a :class:`TransactionalTable` freshly constructed over a
        rebuilt base layout and the surviving blob store.  Replay is
        deterministic and idempotent — records at or below the applied lsn
        are skipped, and a torn tail batch (the crash) is ignored by
        :meth:`~repro.txn.wal.WriteAheadLog.replay`, recovering exactly the
        last group commit's state.  All recovered batches apply as one
        version bump.  Returns the number of records applied.
        """
        if self.wal is None:
            raise TransactionError("cannot replay: WAL is disabled")
        with self._lock:
            records = [
                r for r in self.wal.replay() if r.lsn > self._applied_lsn
            ]
            if records:
                self._apply(records)
            return len(records)

    def _apply(self, records: List[WalRecord]) -> int:
        """Turn one durable batch into delta state at a fresh version."""
        new_tombstones: set = set()
        insert_tids: List[np.ndarray] = []
        insert_columns: List[Dict[str, np.ndarray]] = []
        for record in records:
            if record.kind == KIND_DELETE:
                new_tombstones.update(int(t) for t in record.tids)
            elif record.kind == KIND_INSERT:
                insert_tids.append(record.tids)
                insert_columns.append(record.columns)
            elif record.kind == KIND_UPDATE:
                new_tombstones.update(int(t) for t in record.old_tids)
                insert_tids.append(record.tids)
                insert_columns.append(record.columns)

        segments = ()
        if insert_tids:
            all_tids = np.concatenate(insert_tids)
            expected = np.arange(
                self.data.n_tuples, self.data.n_tuples + len(all_tids),
                dtype=np.int64,
            )
            if not np.array_equal(np.sort(all_tids), expected):
                raise TransactionError(
                    "insert tids are not contiguous at the table watermark "
                    "(was the WAL replayed against the wrong base state?)"
                )
            order = np.argsort(all_tids, kind="stable")
            merged = {
                name: np.concatenate(
                    [cols[name] for cols in insert_columns]
                )[order].astype(self.schema[name].np_dtype, copy=False)
                for name in self.schema.attribute_names
            }
            # Grow the authoritative columns only when no engine is mid-scan
            # (readers size their dense arrays from the table meta once).
            with self._readers_cv:
                while self._readers:
                    self._readers_cv.wait()
                self.data.append_rows(merged)
                self._rebind_meta()
            segment = self.delta_store.write_segment(
                self._next_sid, all_tids[order], merged
            )
            self._next_sid += 1
            segments = (segment,)
            self._next_tid = max(self._next_tid, self.data.n_tuples)

        previous = self._state_at(self.manager.catalog_version)
        version = self.manager.advance_version()
        if segments:
            segments[0].version = version
        state = previous.with_commit(segments, frozenset(new_tombstones))
        self._register_state(version, state)
        self._applied_lsn = max(self._applied_lsn,
                                max(r.lsn for r in records))
        self._lsn = max(self._lsn, self._applied_lsn)
        self._publish_txn()
        return version

    def _register_state(self, version: int, state: DeltaState) -> None:
        with self._lock:
            self._states[version] = state
            index = bisect_right(self._state_versions, version)
            self._state_versions.insert(index, version)

    def record_compaction(
        self,
        version: int,
        state: DeltaState,
        folded_tids: np.ndarray,
        dropped_tids: np.ndarray,
    ) -> None:
        """Install a compaction's post-fold state (called by the
        :class:`~repro.txn.compactor.DeltaCompactor` after its swap)."""
        with self._lock:
            self._register_state(version, state)
            self._base_events.append((
                version,
                np.asarray(folded_tids, dtype=np.int64),
                np.asarray(dropped_tids, dtype=np.int64),
            ))

    def _rebind_meta(self) -> None:
        """Point the layout and engine(s) at the grown table meta."""
        meta = self.data.meta
        self.layout.table = meta
        executor = self.layout.executor
        for engine in (executor, getattr(executor, "standard", None)):
            if engine is None:
                continue
            if hasattr(engine, "table"):
                engine.table = meta
            planner = getattr(engine, "planner", None)
            if planner is not None:
                planner.table = meta

    # ------------------------------------------------------------ pinning

    def pin(self, version: Optional[int] = None) -> CatalogSnapshot:
        """Pin a snapshot and attach the write path's base-domain mask."""
        snapshot = self.manager.pin_snapshot(version)
        snapshot.valid_mask = self._base_valid_mask(snapshot.version)
        return snapshot

    def _base_valid_mask(self, version: int) -> np.ndarray:
        """True for tids a *base* scan may return at ``version``."""
        with self._lock:
            mask = np.zeros(self.data.n_tuples, dtype=bool)
            mask[:self._base_n] = True
            for event_version, folded, dropped in self._base_events:
                if event_version > version:
                    break
                if len(folded):
                    mask[folded] = True
                if len(dropped):
                    mask[dropped] = False
            return mask

    def _visible_mask(self, version: int) -> np.ndarray:
        """True for tids visible to a query at ``version`` (base + delta -
        tombstones) — the dense reference the write oracle also checks."""
        mask = self._base_valid_mask(version)
        state = self._state_at(version)
        for segment in state.segments:
            mask[segment.tids[segment.tids < len(mask)]] = True
        tombs = state.tombstone_array()
        if len(tombs):
            mask[tombs[tombs < len(mask)]] = False
        return mask

    # -------------------------------------------------------------- reads

    def execute(
        self, query: Query, as_of: Optional[int] = None
    ) -> Tuple[ResultSet, ExecutionStats]:
        """Run one query at a pinned snapshot (current version by default).

        ``as_of`` pins an older retained catalog version — time travel.  The
        base engine scans the snapshot's partition set; tombstones are
        masked and the snapshot version's delta segments merged on top, with
        simulated I/O for non-pruned deltas charged into the same
        :class:`~repro.plan.stats.ExecutionStats` ledger.
        """
        snapshot = self.pin(as_of)
        try:
            # Resolve the frozen delta state BEFORE counting as a reader:
            # _state_at takes the table lock, and a committing writer holds
            # it while draining readers — acquiring it from inside the
            # readers section would deadlock.  The state for a pinned
            # version is immutable, so resolving early is race-free.
            state = self._state_at(snapshot.version)
            with self._readers_cv:
                self._readers += 1
            try:
                return self._execute_pinned(query, snapshot, state)
            finally:
                with self._readers_cv:
                    self._readers -= 1
                    self._readers_cv.notify_all()
        finally:
            snapshot.release()

    def _execute_pinned(
        self, query: Query, snapshot: CatalogSnapshot, state: DeltaState
    ) -> Tuple[ResultSet, ExecutionStats]:
        executor = self.layout.executor
        outcome = executor.execute(query, snapshot=snapshot)
        if isinstance(outcome, tuple):
            result, stats = outcome
        else:
            # The threaded engine returns a bare ResultSet and publishes its
            # combined ledger on ``last_stats``.
            result, stats = outcome, executor.last_stats
        if self._base_events and len(result.tuple_ids) > 1:
            # A layout migration run after a compaction fold can place the
            # same folded tid in two base partitions (the folded partition
            # and a migrated box that matched its values).  ResultSet is
            # tid-sorted, so duplicates are adjacent.
            tids = result.tuple_ids
            dup = tids[1:] == tids[:-1]
            if dup.any():
                keep = np.ones(len(tids), dtype=bool)
                keep[1:] = ~dup
                result = ResultSet(
                    tids[keep],
                    {
                        name: values[keep]
                        for name, values in result.columns.items()
                    },
                )
        if not state.segments and not state.tombstones:
            return result, stats
        tracer = obs_tracer()
        if not tracer.enabled:
            return self._merge_deltas(query, snapshot, state, result, stats)
        with tracer.span(
            "txn.delta_merge",
            version=snapshot.version,
            n_segments=len(state.segments),
            n_tombstones=len(state.tombstones),
        ):
            return self._merge_deltas(query, snapshot, state, result, stats)

    def _merge_deltas(
        self,
        query: Query,
        snapshot: CatalogSnapshot,
        state: DeltaState,
        result: ResultSet,
        stats: ExecutionStats,
    ) -> Tuple[ResultSet, ExecutionStats]:
        projected = tuple(query.select)
        tombs = state.tombstone_array()
        tuple_ids = result.tuple_ids
        columns = result.columns
        if len(tuple_ids):
            keep = np.ones(len(tuple_ids), dtype=bool)
            if len(tombs):
                keep &= ~np.isin(tuple_ids, tombs)
            if state.segments:
                # Delta-owned tids are served from their segments below; a
                # base partition may also hold them (a layout migration that
                # ran on a dirty delta state absorbs appended rows), so drop
                # them here to keep the merge duplicate-free either way.
                owned = np.concatenate(
                    [segment.tids for segment in state.segments]
                )
                keep &= ~np.isin(tuple_ids, owned)
            if not keep.all():
                tuple_ids = tuple_ids[keep]
                columns = {
                    name: values[keep] for name, values in columns.items()
                }

        extra_tids: List[np.ndarray] = []
        extra_columns: Dict[str, List[np.ndarray]] = {
            name: [] for name in projected
        }
        for segment in state.segments:
            pruned = False
            for name, bounds in query.where.items():
                lo, hi = self._bounds(bounds)
                if segment.zone_disjoint(name, lo, hi):
                    pruned = True
                    break
            if pruned:
                stats.n_partitions_skipped += 1
                stats.n_partitions_pruned += 1
                continue
            stats.accrue_io(self.delta_store.charge_read(segment))
            stats.n_partition_reads += 1
            mask = np.ones(segment.n_tuples, dtype=bool)
            for name, bounds in query.where.items():
                lo, hi = self._bounds(bounds)
                column = segment.columns[name]
                mask &= (column >= lo) & (column <= hi)
                stats.cells_scanned += segment.n_tuples
            if len(tombs):
                mask &= ~np.isin(segment.tids, tombs)
            hits = np.nonzero(mask)[0]
            if not len(hits):
                continue
            extra_tids.append(segment.tids[hits])
            for name in projected:
                extra_columns[name].append(segment.columns[name][hits])
                stats.cells_gathered += len(hits)

        if extra_tids:
            tuple_ids = np.concatenate([tuple_ids, *extra_tids])
            columns = {
                name: np.concatenate(
                    [columns[name], *extra_columns[name]]
                )
                for name in projected
            }
        merged = ResultSet(tuple_ids, columns)
        stats.n_result_tuples = merged.n_tuples
        cpu_model = getattr(self.layout.executor, "cpu_model", None)
        if cpu_model is not None:
            # Re-price the (now larger) event counters into simulated CPU
            # seconds — charge_cpu recomputes from counters, so this stays
            # exact rather than additive.
            stats.charge_cpu(cpu_model)
        return merged, stats

    def execute_as_of(
        self, query: Query, version: int
    ) -> Tuple[ResultSet, ExecutionStats]:
        return self.execute(query, as_of=version)

    # ------------------------------------------------------------- obs

    def _publish_wal(self) -> None:
        try:
            from ..obs import publish_wal
        except ImportError:  # pragma: no cover - obs always ships
            return
        publish_wal(self.wal)

    def _publish_txn(self) -> None:
        try:
            from ..obs import publish_txn
        except ImportError:  # pragma: no cover - obs always ships
            return
        publish_txn(self)

    # ------------------------------------------------------- introspection

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._state_at(self.manager.catalog_version)
        return (
            f"TransactionalTable({self.data.meta.name!r}, "
            f"v{self.manager.catalog_version}, {len(state.segments)} delta "
            f"segments, {len(state.tombstones)} tombstones)"
        )
