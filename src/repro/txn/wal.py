"""The write-ahead log: CRC32-framed commit batches through the blob store.

Durability contract: a write is durable exactly when its *group commit*
batch blob landed in the store.  :meth:`WriteAheadLog.append` only buffers a
typed record (INSERT / DELETE / UPDATE, each carrying full row payloads so
replay needs no reads); :meth:`WriteAheadLog.commit` frames every buffered
record into one batch blob — one ``put`` per commit is the simulated fsync,
which is what makes group commit worth measuring — and :meth:`replay`
reconstructs the committed record stream deterministically after a crash.

Framing (all little-endian, mirroring the format-v2 idiom of
:mod:`repro.storage.format`):

* batch blob: ``JWAL | format u16 | batch_seq u64 | n_records u32 |
  header_crc u32`` then the concatenated records;
* record: ``kind u8 | lsn u64 | n_tuples u64 | payload_len u32 |
  payload_crc u32 | payload`` — the CRC covers header *and* payload, so a
  torn write anywhere inside a record is detected, not decoded.

Crash model: the store holds whole blobs, so a "crash" in tests truncates
or corrupts the *last* batch blob (``FaultInjectingBlobStore`` corruption
also lands here).  :meth:`replay` consumes batches in sequence order and
stops at the first missing or undecodable batch — everything before it is
the recovered state, which is exactly "recover to the last group commit".

The WAL shares the manager's blob store (under ``wal/``), so fault
injection wired by :func:`repro.testing.inject_faults` covers the log too.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..core.schema import TableSchema
from ..errors import StorageError, TransactionError
from ..obs import tracer as obs_tracer
from ..storage.blob import BlobStore
from ..storage.format import segment_row_dtype

__all__ = [
    "KIND_DELETE",
    "KIND_INSERT",
    "KIND_UPDATE",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
]

WAL_MAGIC = b"JWAL"
WAL_FORMAT_VERSION = 1

#: batch header: magic, format, batch sequence number, record count, CRC of
#: the preceding fields.
_BATCH_HEADER = struct.Struct("<4sHQII")
#: record header: kind, lsn, n_tuples, payload byte length, CRC over the
#: header-sans-CRC plus payload.
_RECORD_HEADER = struct.Struct("<BQQII")

KIND_INSERT = "insert"
KIND_UPDATE = "update"
KIND_DELETE = "delete"
_KIND_CODES = {KIND_INSERT: 1, KIND_DELETE: 2, KIND_UPDATE: 3}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}


@dataclass(frozen=True)
class WalRecord:
    """One logical write, self-contained for replay.

    ``tids`` are the tuple ids the record *assigns* (insert/update: the new
    rows' ids) or *dooms* (delete).  ``old_tids`` is update-only: the rows
    the update supersedes (an update is a delete of ``old_tids`` plus an
    insert of ``tids``).  ``columns`` holds the full new rows for
    insert/update — values are captured at append time, so replay is a pure
    function of the log.
    """

    kind: str
    lsn: int
    tids: np.ndarray
    columns: Optional[Dict[str, np.ndarray]] = None
    old_tids: Optional[np.ndarray] = None

    @property
    def n_tuples(self) -> int:
        return len(self.tids)


@dataclass
class WalStats:
    """Lifetime counters for one log (feeds ``jigsaw_wal_*`` metrics)."""

    n_appends: int = 0
    n_commits: int = 0
    n_empty_commits: int = 0
    n_records_committed: int = 0
    bytes_written: int = 0
    #: bytes released by checkpoint truncations; ``bytes_written -
    #: bytes_truncated`` is the live backlog the WAL health rule watches.
    bytes_truncated: int = 0
    n_batches_replayed: int = 0
    n_records_replayed: int = 0
    n_truncated_tails: int = 0
    #: successful :meth:`WriteAheadLog.truncate_through` checkpoints.
    n_checkpoints: int = 0
    #: wall-clock seconds of the most recent group commit (the simulated
    #: fsync: one blob put per batch).
    last_commit_latency_s: float = 0.0
    commit_latencies_s: List[float] = field(default_factory=list)


def _encode_tids(tids: np.ndarray) -> bytes:
    return np.ascontiguousarray(tids, dtype="<i8").tobytes()


def _decode_tids(payload: bytes, offset: int, count: int) -> Tuple[np.ndarray, int]:
    tids = np.frombuffer(payload, dtype="<i8", count=count, offset=offset).copy()
    return tids, offset + 8 * count


class WriteAheadLog:
    """Append-only typed log over a :class:`~repro.storage.blob.BlobStore`.

    One instance per transactional table.  Thread-safe: appends and commits
    serialize on an internal lock (the group-commit batch is the unit of
    atomicity, matching the one-writer-at-a-time semantics of
    :class:`~repro.txn.table.TransactionalTable`).
    """

    def __init__(
        self,
        store: BlobStore,
        schema: TableSchema,
        key_prefix: str = "wal/",
        retry_policy=None,
    ):
        self.store = store
        self.schema = schema
        self.key_prefix = key_prefix
        self.retry_policy = retry_policy
        self.stats = WalStats()
        self._row_dtype = segment_row_dtype(schema, schema.attribute_names)
        self._pending: List[WalRecord] = []
        self._next_lsn = 1
        self._next_batch = 1
        self._lock = threading.Lock()

    # ------------------------------------------------------------- append

    def append(
        self,
        kind: str,
        tids: np.ndarray,
        columns: Optional[Mapping[str, np.ndarray]] = None,
        old_tids: Optional[np.ndarray] = None,
    ) -> WalRecord:
        """Buffer one typed record; durable only after :meth:`commit`."""
        if kind not in _KIND_CODES:
            raise TransactionError(f"unknown WAL record kind {kind!r}")
        tids = np.asarray(tids, dtype=np.int64)
        if kind in (KIND_INSERT, KIND_UPDATE):
            if columns is None:
                raise TransactionError(f"{kind} record needs row payloads")
            missing = [
                a for a in self.schema.attribute_names if a not in columns
            ]
            if missing:
                raise TransactionError(
                    f"{kind} record missing attributes: {missing}"
                )
            columns = {
                name: np.asarray(columns[name])
                for name in self.schema.attribute_names
            }
            lengths = {len(v) for v in columns.values()} | {len(tids)}
            if len(lengths) != 1:
                raise TransactionError(
                    f"{kind} record rows disagree on length: {sorted(lengths)}"
                )
        else:
            columns = None
        if kind == KIND_UPDATE:
            if old_tids is None:
                raise TransactionError("update record needs old_tids")
            old_tids = np.asarray(old_tids, dtype=np.int64)
        else:
            old_tids = None
        with self._lock:
            record = WalRecord(kind, self._next_lsn, tids, columns, old_tids)
            self._next_lsn += 1
            self._pending.append(record)
            self.stats.n_appends += 1
        return record

    def pending_records(self) -> Tuple[WalRecord, ...]:
        with self._lock:
            return tuple(self._pending)

    def discard_pending(self) -> int:
        """Drop buffered (uncommitted) records — a rollback."""
        with self._lock:
            n = len(self._pending)
            self._pending.clear()
            return n

    # ------------------------------------------------------------- commit

    def commit(self) -> int:
        """Group-commit every buffered record as one batch blob.

        Returns the batch sequence number, or ``-1`` when nothing was
        pending (no blob is written).  The single ``store.put`` is the
        simulated fsync; its wall-clock latency is recorded in
        :attr:`WalStats.last_commit_latency_s` and published to the metrics
        registry by the transactional table.
        """
        started = time.perf_counter()
        with self._lock:
            if not self._pending:
                self.stats.n_empty_commits += 1
                return -1
            records = list(self._pending)
            self._pending.clear()
            seq = self._next_batch
            self._next_batch += 1
        data = self._encode_batch(seq, records)
        tracer = obs_tracer()
        if tracer.enabled:
            with tracer.span(
                "wal.commit", batch_seq=seq, n_records=len(records)
            ) as span:
                self.store.put(self._batch_key(seq), data)
                span.set(n_bytes=len(data))
        else:
            self.store.put(self._batch_key(seq), data)
        latency = time.perf_counter() - started
        with self._lock:
            self.stats.n_commits += 1
            self.stats.n_records_committed += len(records)
            self.stats.bytes_written += len(data)
            self.stats.last_commit_latency_s = latency
            self.stats.commit_latencies_s.append(latency)
        return seq

    # ------------------------------------------------------------- replay

    def replay(self) -> List[WalRecord]:
        """Decode every durable batch in order; stop at the first torn one.

        Deterministic and side-effect-free on the store: calling it twice
        yields the same record stream (idempotence is a tested property).
        Also fast-forwards the lsn/batch counters past everything recovered,
        so a log object created over an existing store continues the
        sequence instead of colliding with it.
        """
        records: List[WalRecord] = []
        batches = 0
        truncated = False
        previous_seq: Optional[int] = None
        for seq in self._batch_seqs():
            if previous_seq is not None and seq != previous_seq + 1:
                # A hole in the sequence: everything past it is suspect.
                truncated = True
                break
            previous_seq = seq
            data = self._read_batch(seq)
            if data is None:
                truncated = True
                break
            try:
                batch = self._decode_batch(seq, data)
            except StorageError:
                # Torn tail: a partially written / corrupted batch means the
                # commit never completed — recovery stops at the last full
                # group commit, and later batches (there should be none in a
                # single-crash model) are ignored too.
                truncated = True
                break
            records.extend(batch)
            batches += 1
        with self._lock:
            if records:
                self._next_lsn = max(self._next_lsn,
                                     max(r.lsn for r in records) + 1)
            known = list(self._batch_seqs())
            if known:
                self._next_batch = max(self._next_batch, max(known) + 1)
            self.stats.n_batches_replayed += batches
            self.stats.n_records_replayed += len(records)
            if truncated:
                self.stats.n_truncated_tails += 1
        return records

    def truncate_through(self, lsn: int) -> int:
        """Checkpoint: delete batches whose records are all applied.

        A batch is deletable when its highest lsn is ``<= lsn`` — after a
        compaction has folded the corresponding deltas into base partitions
        the log no longer needs to reproduce them.  Returns batches deleted.
        """
        dropped = 0
        dropped_bytes = 0
        for seq in self._batch_seqs():
            data = self._read_batch(seq)
            if data is None:
                continue
            try:
                batch = self._decode_batch(seq, data)
            except StorageError:
                continue
            if batch and max(r.lsn for r in batch) <= lsn:
                self.store.delete(self._batch_key(seq))
                dropped += 1
                dropped_bytes += len(data)
        with self._lock:
            self.stats.bytes_truncated += dropped_bytes
            self.stats.n_checkpoints += 1
        return dropped

    # ------------------------------------------------------------ framing

    def _batch_key(self, seq: int) -> str:
        return f"{self.key_prefix}b{seq:010d}.wal"

    def _batch_seqs(self) -> List[int]:
        prefix, suffix = f"{self.key_prefix}b", ".wal"
        seqs = []
        for key in self.store.keys():
            if key.startswith(prefix) and key.endswith(suffix):
                try:
                    seqs.append(int(key[len(prefix):-len(suffix)]))
                except ValueError:
                    continue
        return sorted(seqs)

    def _read_batch(self, seq: int) -> Optional[bytes]:
        """Fetch one batch blob within the retry budget; None = unreadable."""
        attempts = (
            self.retry_policy.max_attempts if self.retry_policy is not None
            else 1
        )
        for _ in range(max(1, attempts)):
            try:
                return self.store.get(self._batch_key(seq))
            except StorageError:
                continue
        return None

    def _encode_batch(self, seq: int, records: List[WalRecord]) -> bytes:
        header = _BATCH_HEADER.pack(
            WAL_MAGIC, WAL_FORMAT_VERSION, seq, len(records), 0
        )[:-4]
        chunks = [header + struct.pack("<I", zlib.crc32(header))]
        for record in records:
            chunks.append(self._encode_record(record))
        return b"".join(chunks)

    def _encode_record(self, record: WalRecord) -> bytes:
        payload_parts: List[bytes] = []
        if record.kind == KIND_UPDATE:
            payload_parts.append(_encode_tids(record.old_tids))
        payload_parts.append(_encode_tids(record.tids))
        if record.columns is not None:
            rows = np.zeros(len(record.tids), dtype=self._row_dtype)
            for name in self.schema.attribute_names:
                rows[name] = record.columns[name]
            payload_parts.append(rows.tobytes())
        payload = b"".join(payload_parts)
        head = _RECORD_HEADER.pack(
            _KIND_CODES[record.kind], record.lsn, len(record.tids),
            len(payload), 0,
        )[:-4]
        crc = zlib.crc32(payload, zlib.crc32(head))
        return head + struct.pack("<I", crc) + payload

    def _decode_batch(self, seq: int, data: bytes) -> List[WalRecord]:
        if len(data) < _BATCH_HEADER.size:
            raise StorageError(f"wal batch {seq}: truncated header")
        magic, version, stored_seq, n_records, stored_crc = (
            _BATCH_HEADER.unpack_from(data, 0)
        )
        if magic != WAL_MAGIC:
            raise StorageError(f"wal batch {seq}: bad magic {magic!r}")
        if version != WAL_FORMAT_VERSION:
            raise StorageError(f"wal batch {seq}: unknown format {version}")
        if stored_seq != seq:
            raise StorageError(
                f"wal batch {seq}: blob claims sequence {stored_seq}"
            )
        if zlib.crc32(data[:_BATCH_HEADER.size - 4]) != stored_crc:
            raise StorageError(f"wal batch {seq}: header checksum mismatch")
        offset = _BATCH_HEADER.size
        records: List[WalRecord] = []
        for _ in range(n_records):
            record, offset = self._decode_record(seq, data, offset)
            records.append(record)
        return records

    def _decode_record(
        self, seq: int, data: bytes, offset: int
    ) -> Tuple[WalRecord, int]:
        if offset + _RECORD_HEADER.size > len(data):
            raise StorageError(f"wal batch {seq}: truncated record header")
        code, lsn, n_tuples, payload_len, stored_crc = (
            _RECORD_HEADER.unpack_from(data, offset)
        )
        kind = _KIND_NAMES.get(code)
        if kind is None:
            raise StorageError(f"wal batch {seq}: unknown record kind {code}")
        body_start = offset + _RECORD_HEADER.size
        if body_start + payload_len > len(data):
            raise StorageError(f"wal batch {seq}: truncated record payload")
        payload = data[body_start:body_start + payload_len]
        head = data[offset:offset + _RECORD_HEADER.size - 4]
        if zlib.crc32(payload, zlib.crc32(head)) != stored_crc:
            raise StorageError(f"wal batch {seq}: record checksum mismatch")
        cursor = 0
        old_tids = None
        if kind == KIND_UPDATE:
            old_count = (
                payload_len - n_tuples * (8 + self._row_dtype.itemsize)
            ) // 8
            old_tids, cursor = _decode_tids(payload, cursor, old_count)
        tids, cursor = _decode_tids(payload, cursor, n_tuples)
        columns = None
        if kind in (KIND_INSERT, KIND_UPDATE):
            rows = np.frombuffer(
                payload, dtype=self._row_dtype, count=n_tuples, offset=cursor
            )
            columns = {
                name: np.ascontiguousarray(rows[name])
                for name in self.schema.attribute_names
            }
        return (
            WalRecord(kind, lsn, tids, columns, old_tids),
            body_start + payload_len,
        )

    # --------------------------------------------------------- inspection

    @property
    def last_lsn(self) -> int:
        """Highest LSN assigned so far (0 before the first append)."""
        with self._lock:
            return self._next_lsn - 1

    @property
    def backlog_bytes(self) -> int:
        """Committed bytes not yet released by a checkpoint truncation."""
        with self._lock:
            return max(
                0, self.stats.bytes_written - self.stats.bytes_truncated
            )

    def batch_keys(self) -> List[str]:
        return [self._batch_key(seq) for seq in self._batch_seqs()]

    def __iter__(self) -> Iterator[WalRecord]:  # pragma: no cover - helper
        return iter(self.replay())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({len(self._batch_seqs())} batches, "
            f"{len(self._pending)} pending)"
        )
