"""Benchmark workloads: HAP and TPC-H."""

from . import tpch
from .hap import HAPTemplate, hap_templates, hap_workload, make_hap_table

__all__ = [
    "HAPTemplate",
    "hap_templates",
    "hap_workload",
    "make_hap_table",
    "tpch",
]
