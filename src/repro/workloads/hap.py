"""The HAP benchmark (Athanassoulis et al., "Optimal Column Layout for
Hybrid Workloads", VLDB'19) — Section 6.1.1.

Two tables: a *narrow* one with 16 columns and a *wide* one with 160 columns,
every attribute a 4-byte uniformly distributed integer.  The read-only query
workload is

    SELECT a_i, ..., a_j, ..., a_k FROM T WHERE C1 <= a_j <= C2

parameterized by selectivity, projectivity, the number of query templates and
the number of queries.  A template fixes the projected attribute set and the
predicate attribute (one of the projected ones); each query instantiates a
template with random constants meeting the selectivity requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.query import Query, Workload
from ..core.schema import TableMeta, TableSchema
from ..errors import InvalidQueryError
from ..storage.table_data import ColumnTable

__all__ = ["HAPTemplate", "make_hap_table", "hap_templates", "hap_workload"]

#: Attribute values are uniform integers in [0, VALUE_MAX].
VALUE_MAX = 999_999

WIDE_ATTRS = 160
NARROW_ATTRS = 16


def _attribute_names(n_attrs: int) -> List[str]:
    return [f"a{i:03d}" for i in range(n_attrs)]


def make_hap_table(
    n_tuples: int,
    n_attrs: int = WIDE_ATTRS,
    seed: int = 0,
    name: str = "hap",
    distribution: str = "uniform",
) -> ColumnTable:
    """Generate a HAP table: ``n_attrs`` 4-byte integer columns.

    ``distribution`` is ``"uniform"`` (the benchmark's definition) or
    ``"zipf"``, a heavily skewed power-law variant used by the
    histogram-estimation ablation — the uniform-and-independent assumption of
    Algorithm 4 is exact on the former and badly wrong on the latter.
    """
    rng = np.random.default_rng(seed)
    names = _attribute_names(n_attrs)
    schema = TableSchema.uniform(names, byte_width=4, np_dtype="int32")
    if distribution == "uniform":
        columns = {
            attr: rng.integers(0, VALUE_MAX + 1, size=n_tuples, dtype=np.int32)
            for attr in names
        }
    elif distribution == "zipf":
        columns = {}
        for attr in names:
            raw = rng.zipf(1.3, size=n_tuples).astype(np.float64)
            scaled = np.minimum(raw / 5_000.0, 1.0) * VALUE_MAX
            columns[attr] = scaled.astype(np.int32)
    else:
        raise InvalidQueryError(f"unknown distribution {distribution!r}")
    return ColumnTable.build(name, schema, columns)


@dataclass(frozen=True, slots=True)
class HAPTemplate:
    """One query template: projected attributes + the predicate attribute."""

    projected: Tuple[str, ...]
    predicate_attribute: str

    def instantiate(
        self, table: TableMeta, selectivity: float, rng: np.random.Generator, label: str = ""
    ) -> Query:
        """Draw random constants C1, C2 meeting the selectivity requirement."""
        interval = table.interval(self.predicate_attribute)
        span = int(interval.hi - interval.lo) + 1
        width = max(1, min(span, int(round(selectivity * span))))
        c1 = int(interval.lo) + int(rng.integers(0, span - width + 1))
        return Query.build(
            table,
            select=list(self.projected),
            where={self.predicate_attribute: (c1, c1 + width - 1)},
            label=label,
        )


def hap_templates(
    table: TableMeta,
    projectivity: int,
    n_templates: int,
    rng: np.random.Generator,
    predicate_projected: bool = True,
) -> List[HAPTemplate]:
    """Draw random templates: ``projectivity`` attributes each.

    With ``predicate_projected=True`` (the paper's construction) the
    predicate attribute is one of the projected attributes; with False it is
    drawn from outside the projected set (the TPC-H Q6/Q10 shape, where
    filter columns are pure I/O overhead — the regime the replication
    extension targets).
    """
    names = table.attribute_names
    if projectivity < 1 or projectivity > len(names):
        raise InvalidQueryError(
            f"projectivity must be in [1, {len(names)}], got {projectivity}"
        )
    if not predicate_projected and projectivity >= len(names):
        raise InvalidQueryError(
            "predicate_projected=False needs at least one unprojected attribute"
        )
    templates = []
    for _ in range(n_templates):
        chosen = rng.choice(len(names), size=projectivity, replace=False)
        projected = tuple(names[i] for i in sorted(chosen))
        if predicate_projected:
            predicate = projected[int(rng.integers(0, len(projected)))]
        else:
            outside = [name for name in names if name not in projected]
            predicate = outside[int(rng.integers(0, len(outside)))]
        templates.append(HAPTemplate(projected, predicate))
    return templates


def hap_workload(
    table: TableMeta,
    selectivity: float,
    projectivity: int,
    n_templates: int,
    n_queries: int,
    seed: int = 0,
    templates: List[HAPTemplate] | None = None,
    predicate_projected: bool = True,
) -> Tuple[Workload, List[HAPTemplate]]:
    """Build a HAP workload: queries drawn uniformly from random templates.

    Returns ``(workload, templates)`` so that training and evaluation
    workloads can share templates (pass the returned templates back in).
    """
    if not 0.0 < selectivity <= 1.0:
        raise InvalidQueryError(f"selectivity must be in (0, 1], got {selectivity}")
    rng = np.random.default_rng(seed)
    if templates is None:
        templates = hap_templates(
            table, projectivity, n_templates, rng, predicate_projected
        )
    queries = []
    for index in range(n_queries):
        template = templates[int(rng.integers(0, len(templates)))]
        queries.append(
            template.instantiate(table, selectivity, rng, label=f"hap-{index}")
        )
    return Workload(table, queries), templates
