"""TPC-H substrate: data generator, denormalized table, query templates."""

from .dbgen import TPCHDatabase, generate_tpch
from .denorm import DENORM_SCHEMA, denormalize
from .encoding import (
    EPOCH,
    NATION_TO_REGION,
    NATIONS,
    PART_TYPES,
    REGIONS,
    RETURN_FLAGS,
    SEGMENTS,
    Dictionary,
    date_of,
    days,
)
from .queries import TPCH_TEMPLATES, TPCHTemplate, tpch_workload

__all__ = [
    "DENORM_SCHEMA",
    "Dictionary",
    "EPOCH",
    "NATIONS",
    "NATION_TO_REGION",
    "PART_TYPES",
    "REGIONS",
    "RETURN_FLAGS",
    "SEGMENTS",
    "TPCHDatabase",
    "TPCHTemplate",
    "TPCH_TEMPLATES",
    "date_of",
    "days",
    "denormalize",
    "generate_tpch",
    "tpch_workload",
]
