"""A from-scratch, scaled-down TPC-H data generator.

Produces the seven base tables (region, nation, supplier, part, customer,
orders, lineitem) as :class:`~repro.storage.table_data.ColumnTable` objects
with the value distributions the five evaluated query templates depend on:
uniform keys, the 1992-01-01 .. 1998-08-02 order-date window, ship dates 1-121
days after the order date, discounts in [0.00, 0.10], and return flags
correlated with receipt dates (``'R'`` before the 1995-06-17 cutoff), exactly
as ``dbgen`` does.

Cardinalities follow the specification's per-scale-factor counts; fractional
scale factors (e.g. 0.001) give laptop-sized databases with the same shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.schema import AttributeSpec, TableSchema
from ...errors import InvalidQueryError
from ...storage.table_data import ColumnTable
from .encoding import NATION_TO_REGION, NATIONS, REGIONS, RETURN_FLAGS, PART_TYPES, SEGMENTS, days

__all__ = ["TPCHDatabase", "generate_tpch"]

#: last order date (spec: STARTDATE .. ENDDATE - 151 days)
_MAX_ORDERDATE = days(1998, 8, 2)
_RETURNFLAG_CUTOFF = days(1995, 6, 17)


@dataclass(slots=True)
class TPCHDatabase:
    """The seven TPC-H base tables."""

    region: ColumnTable
    nation: ColumnTable
    supplier: ColumnTable
    part: ColumnTable
    customer: ColumnTable
    orders: ColumnTable
    lineitem: ColumnTable
    scale_factor: float


def _int_count(base: int, scale_factor: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale_factor)))


def generate_tpch(scale_factor: float = 0.01, seed: int = 0) -> TPCHDatabase:
    """Generate a TPC-H database at the given (possibly fractional) scale."""
    if scale_factor <= 0:
        raise InvalidQueryError("scale factor must be positive")
    rng = np.random.default_rng(seed)

    region = _make_region()
    nation = _make_nation()
    n_supplier = _int_count(10_000, scale_factor)
    n_part = _int_count(200_000, scale_factor)
    n_customer = _int_count(150_000, scale_factor)
    n_orders = _int_count(1_500_000, scale_factor)

    supplier = _make_supplier(n_supplier, rng)
    part = _make_part(n_part, rng)
    customer = _make_customer(n_customer, rng)
    orders = _make_orders(n_orders, n_customer, rng)
    lineitem = _make_lineitem(orders, n_part, n_supplier, part, rng)
    return TPCHDatabase(
        region=region,
        nation=nation,
        supplier=supplier,
        part=part,
        customer=customer,
        orders=orders,
        lineitem=lineitem,
        scale_factor=scale_factor,
    )


def _make_region() -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("r_regionkey", 4, "int32"),
            AttributeSpec("r_name", 25, "int8"),
        ]
    )
    keys = np.arange(len(REGIONS), dtype=np.int32)
    return ColumnTable.build(
        "region", schema, {"r_regionkey": keys, "r_name": keys.astype(np.int8)}
    )


def _make_nation() -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("n_nationkey", 4, "int32"),
            AttributeSpec("n_name", 25, "int8"),
            AttributeSpec("n_regionkey", 4, "int32"),
        ]
    )
    keys = np.arange(len(NATIONS), dtype=np.int32)
    regions = np.array([NATION_TO_REGION[int(k)] for k in keys], dtype=np.int32)
    return ColumnTable.build(
        "nation",
        schema,
        {"n_nationkey": keys, "n_name": keys.astype(np.int8), "n_regionkey": regions},
    )


def _make_supplier(n: int, rng: np.random.Generator) -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("s_suppkey", 8, "int64"),
            AttributeSpec("s_nationkey", 4, "int32"),
        ]
    )
    return ColumnTable.build(
        "supplier",
        schema,
        {
            "s_suppkey": np.arange(1, n + 1, dtype=np.int64),
            "s_nationkey": rng.integers(0, len(NATIONS), n, dtype=np.int32),
        },
    )


def _make_part(n: int, rng: np.random.Generator) -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("p_partkey", 8, "int64"),
            AttributeSpec("p_type", 25, "int16"),
            AttributeSpec("p_retailprice", 8, "float64", integer=False),
        ]
    )
    keys = np.arange(1, n + 1, dtype=np.int64)
    # spec: 90000 + (partkey/10 mod 20001) + 100*(partkey mod 1000), in cents
    retail = (90_000 + (keys // 10) % 20_001 + 100 * (keys % 1_000)) / 100.0
    return ColumnTable.build(
        "part",
        schema,
        {
            "p_partkey": keys,
            "p_type": rng.integers(0, len(PART_TYPES), n, dtype=np.int16),
            "p_retailprice": retail.astype(np.float64),
        },
    )


def _make_customer(n: int, rng: np.random.Generator) -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("c_custkey", 8, "int64"),
            AttributeSpec("c_name", 25, "int32"),
            AttributeSpec("c_address", 40, "int32"),
            AttributeSpec("c_phone", 15, "int32"),
            AttributeSpec("c_acctbal", 8, "float64", integer=False),
            AttributeSpec("c_mktsegment", 10, "int8"),
            AttributeSpec("c_nationkey", 4, "int32"),
            AttributeSpec("c_comment", 117, "int32"),
        ]
    )
    keys = np.arange(1, n + 1, dtype=np.int64)
    return ColumnTable.build(
        "customer",
        schema,
        {
            "c_custkey": keys,
            # Name/address/phone/comment contents are never filtered on; the
            # codes are derived from the key so they stay unique and decodable.
            "c_name": keys.astype(np.int32),
            "c_address": rng.integers(0, 2**31 - 1, n, dtype=np.int32),
            "c_phone": rng.integers(0, 2**31 - 1, n, dtype=np.int32),
            "c_acctbal": rng.uniform(-999.99, 9999.99, n),
            "c_mktsegment": rng.integers(0, len(SEGMENTS), n, dtype=np.int8),
            "c_nationkey": rng.integers(0, len(NATIONS), n, dtype=np.int32),
            "c_comment": rng.integers(0, 2**31 - 1, n, dtype=np.int32),
        },
    )


def _make_orders(n: int, n_customer: int, rng: np.random.Generator) -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("o_orderkey", 8, "int64"),
            AttributeSpec("o_custkey", 8, "int64"),
            AttributeSpec("o_orderdate", 4, "int32"),
            AttributeSpec("o_shippriority", 4, "int32"),
        ]
    )
    return ColumnTable.build(
        "orders",
        schema,
        {
            "o_orderkey": np.arange(1, n + 1, dtype=np.int64),
            "o_custkey": rng.integers(1, n_customer + 1, n, dtype=np.int64),
            "o_orderdate": rng.integers(0, _MAX_ORDERDATE + 1, n, dtype=np.int32),
            "o_shippriority": np.zeros(n, dtype=np.int32),
        },
    )


def _make_lineitem(
    orders: ColumnTable,
    n_part: int,
    n_supplier: int,
    part: ColumnTable,
    rng: np.random.Generator,
) -> ColumnTable:
    schema = TableSchema(
        [
            AttributeSpec("l_orderkey", 8, "int64"),
            AttributeSpec("l_partkey", 8, "int64"),
            AttributeSpec("l_suppkey", 8, "int64"),
            AttributeSpec("l_linenumber", 4, "int32"),
            AttributeSpec("l_quantity", 8, "float64", integer=False),
            AttributeSpec("l_extendedprice", 8, "float64", integer=False),
            AttributeSpec("l_discount", 8, "float64", integer=False),
            AttributeSpec("l_returnflag", 1, "int8"),
            AttributeSpec("l_shipdate", 4, "int32"),
        ]
    )
    n_orders = orders.n_tuples
    lines_per_order = rng.integers(1, 8, n_orders)
    l_orderkey = np.repeat(orders.column("o_orderkey"), lines_per_order)
    order_dates = np.repeat(orders.column("o_orderdate"), lines_per_order)
    n = len(l_orderkey)

    linenumber = np.concatenate(
        [np.arange(1, k + 1, dtype=np.int32) for k in lines_per_order]
    ) if n else np.empty(0, dtype=np.int32)
    partkey = rng.integers(1, n_part + 1, n, dtype=np.int64)
    quantity = rng.integers(1, 51, n).astype(np.float64)
    # extendedprice = quantity * part retail price (spec formula).
    retail = part.column("p_retailprice")[partkey - 1]
    extendedprice = quantity * retail
    discount = rng.integers(0, 11, n).astype(np.float64) / 100.0
    shipdate = order_dates + rng.integers(1, 122, n).astype(np.int32)
    receiptdate = shipdate + rng.integers(1, 31, n).astype(np.int32)
    returnflag = np.where(
        receiptdate <= _RETURNFLAG_CUTOFF,
        RETURN_FLAGS.code("R"),
        np.where(rng.random(n) < 0.5, RETURN_FLAGS.code("A"), RETURN_FLAGS.code("N")),
    ).astype(np.int8)

    return ColumnTable.build(
        "lineitem",
        schema,
        {
            "l_orderkey": l_orderkey,
            "l_partkey": partkey,
            "l_suppkey": rng.integers(1, n_supplier + 1, n, dtype=np.int64),
            "l_linenumber": linenumber,
            "l_quantity": quantity,
            "l_extendedprice": extendedprice,
            "l_discount": discount,
            "l_returnflag": returnflag,
            "l_shipdate": shipdate.astype(np.int32),
        },
    )
