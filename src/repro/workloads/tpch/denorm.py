"""Denormalized LINEITEM table (the GSOP evaluation strategy, Section 6.1.1).

Joins lineitem with orders, customer, nation, region, part and supplier and
materializes the 19 attributes the five evaluated templates touch.  The
logical byte widths follow the TPC-H character widths, so the paper's
per-tuple projection sizes hold exactly: Q3 projects 36 bytes per tuple and
Q10 projects 254 bytes per tuple.
"""

from __future__ import annotations

import numpy as np

from ...core.schema import AttributeSpec, TableSchema
from ...storage.table_data import ColumnTable
from .dbgen import TPCHDatabase
from .encoding import NATION_TO_REGION

__all__ = ["DENORM_SCHEMA", "denormalize"]

#: The 19 materialized attributes (paper: "we materialize 19 attributes").
DENORM_SCHEMA = TableSchema(
    [
        AttributeSpec("l_orderkey", 8, "int64"),
        AttributeSpec("l_quantity", 8, "float64", integer=False),
        AttributeSpec("l_extendedprice", 8, "float64", integer=False),
        AttributeSpec("l_discount", 8, "float64", integer=False),
        AttributeSpec("l_returnflag", 1, "int8"),
        AttributeSpec("l_shipdate", 4, "int32"),
        AttributeSpec("o_orderdate", 8, "int32"),
        AttributeSpec("o_shippriority", 4, "int32"),
        AttributeSpec("c_custkey", 8, "int64"),
        AttributeSpec("c_name", 25, "int32"),
        AttributeSpec("c_address", 40, "int32"),
        AttributeSpec("c_phone", 15, "int32"),
        AttributeSpec("c_acctbal", 8, "float64", integer=False),
        AttributeSpec("c_mktsegment", 10, "int8"),
        AttributeSpec("c_comment", 117, "int32"),
        AttributeSpec("n_name", 25, "int8"),
        AttributeSpec("r_name", 25, "int8"),
        AttributeSpec("p_type", 25, "int16"),
        AttributeSpec("s_nation", 25, "int8"),
    ]
)


def denormalize(db: TPCHDatabase, name: str = "lineitem_denorm") -> ColumnTable:
    """Join the base tables into the wide evaluation table."""
    lineitem = db.lineitem
    # Foreign keys are dense 1..N, so joins are vectorized array lookups.
    order_index = (lineitem.column("l_orderkey") - 1).astype(np.int64)
    cust_index = (db.orders.column("o_custkey")[order_index] - 1).astype(np.int64)
    part_index = (lineitem.column("l_partkey") - 1).astype(np.int64)
    supp_index = (lineitem.column("l_suppkey") - 1).astype(np.int64)

    cust_nation = db.customer.column("c_nationkey")[cust_index]
    region_lookup = np.array(
        [NATION_TO_REGION[code] for code in range(len(NATION_TO_REGION))], dtype=np.int8
    )
    supp_nation = db.supplier.column("s_nationkey")[supp_index]

    columns = {
        "l_orderkey": lineitem.column("l_orderkey"),
        "l_quantity": lineitem.column("l_quantity"),
        "l_extendedprice": lineitem.column("l_extendedprice"),
        "l_discount": lineitem.column("l_discount"),
        "l_returnflag": lineitem.column("l_returnflag"),
        "l_shipdate": lineitem.column("l_shipdate"),
        "o_orderdate": db.orders.column("o_orderdate")[order_index],
        "o_shippriority": db.orders.column("o_shippriority")[order_index],
        "c_custkey": db.customer.column("c_custkey")[cust_index],
        "c_name": db.customer.column("c_name")[cust_index],
        "c_address": db.customer.column("c_address")[cust_index],
        "c_phone": db.customer.column("c_phone")[cust_index],
        "c_acctbal": db.customer.column("c_acctbal")[cust_index],
        "c_mktsegment": db.customer.column("c_mktsegment")[cust_index],
        "c_comment": db.customer.column("c_comment")[cust_index],
        "n_name": cust_nation.astype(np.int8),
        "r_name": region_lookup[cust_nation],
        "p_type": db.part.column("p_type")[part_index],
        "s_nation": supp_nation.astype(np.int8),
    }
    return ColumnTable.build(name, DENORM_SCHEMA, columns)
