"""Dictionaries and date encoding for the TPC-H substrate.

The engines are numeric, so categorical TPC-H columns are dictionary-encoded:
the dictionary maps strings to integer codes, and the schema keeps the
*logical* byte width (a ``c_comment`` costs 117 bytes on disk even though the
engine sees an ``int32`` code).  Dictionaries are sorted lexicographically so
that ``LIKE 'PROMO%'`` becomes a contiguous code range.
"""

from __future__ import annotations

import datetime
from typing import Dict, Sequence, Tuple

from ...errors import InvalidQueryError

__all__ = [
    "Dictionary",
    "NATIONS",
    "REGIONS",
    "NATION_TO_REGION",
    "SEGMENTS",
    "RETURN_FLAGS",
    "PART_TYPES",
    "EPOCH",
    "days",
    "date_of",
]

#: All dates are integer day offsets from this epoch (TPC-H's first date).
EPOCH = datetime.date(1992, 1, 1)


def days(year: int, month: int, day: int) -> int:
    """Day offset of a calendar date from the TPC-H epoch."""
    return (datetime.date(year, month, day) - EPOCH).days


def date_of(day_offset: int) -> datetime.date:
    """Inverse of :func:`days`."""
    return EPOCH + datetime.timedelta(days=int(day_offset))


class Dictionary:
    """A sorted, immutable string dictionary (value <-> code)."""

    __slots__ = ("values", "_codes")

    def __init__(self, values: Sequence[str], keep_order: bool = False):
        ordered = tuple(values) if keep_order else tuple(sorted(values))
        if len(set(ordered)) != len(ordered):
            raise InvalidQueryError("dictionary values must be unique")
        self.values: Tuple[str, ...] = ordered
        self._codes: Dict[str, int] = {value: i for i, value in enumerate(ordered)}

    def code(self, value: str) -> int:
        try:
            return self._codes[value]
        except KeyError:
            raise InvalidQueryError(f"{value!r} is not in the dictionary") from None

    def value(self, code: int) -> str:
        return self.values[code]

    def prefix_range(self, prefix: str) -> Tuple[int, int]:
        """Inclusive code range of values starting with ``prefix`` (LIKE 'p%')."""
        codes = [i for i, value in enumerate(self.values) if value.startswith(prefix)]
        if not codes:
            raise InvalidQueryError(f"no dictionary value starts with {prefix!r}")
        lo, hi = min(codes), max(codes)
        if hi - lo + 1 != len(codes):  # pragma: no cover - sorted dict guarantee
            raise InvalidQueryError(f"prefix {prefix!r} is not a contiguous code range")
        return lo, hi

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes


# The 25 TPC-H nations with their region assignment (specification order).
_NATION_REGION_PAIRS = (
    ("ALGERIA", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("EGYPT", "MIDDLE EAST"),
    ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"),
    ("JORDAN", "MIDDLE EAST"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("PERU", "AMERICA"),
    ("CHINA", "ASIA"),
    ("ROMANIA", "EUROPE"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
)

NATIONS = Dictionary([name for name, _region in _NATION_REGION_PAIRS])
REGIONS = Dictionary(sorted({region for _name, region in _NATION_REGION_PAIRS}))
#: nation code -> region code
NATION_TO_REGION: Dict[int, int] = {
    NATIONS.code(name): REGIONS.code(region) for name, region in _NATION_REGION_PAIRS
}

SEGMENTS = Dictionary(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"])
RETURN_FLAGS = Dictionary(["A", "N", "R"])

_TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
PART_TYPES = Dictionary(
    [
        f"{s1} {s2} {s3}"
        for s1 in _TYPE_SYLLABLE_1
        for s2 in _TYPE_SYLLABLE_2
        for s3 in _TYPE_SYLLABLE_3
    ]
)
