"""TPC-H query templates Q3, Q6, Q8, Q10 and Q14 on the denormalized table.

The templates follow the specification's substitution parameters (random
segment / date / discount / quantity / type per instance) restricted to the
scan part the paper evaluates: the conjunctive WHERE clause plus the
projected attributes.  LIKE predicates (Q14's ``PROMO%``) become contiguous
dictionary-code ranges; equality predicates become single-value ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ...core.query import Query, Workload
from ...core.schema import TableMeta
from ...errors import InvalidQueryError
from .encoding import PART_TYPES, REGIONS, RETURN_FLAGS, SEGMENTS, days

__all__ = ["TPCHTemplate", "TPCH_TEMPLATES", "tpch_workload"]


@dataclass(frozen=True, slots=True)
class TPCHTemplate:
    """One parameterized TPC-H template."""

    name: str
    make: Callable[[TableMeta, np.random.Generator, str], Query]


def _clip(table: TableMeta, attribute: str, lo: float, hi: float) -> tuple:
    interval = table.interval(attribute)
    return (max(lo, interval.lo), min(hi, interval.hi))


def _q3(table: TableMeta, rng: np.random.Generator, label: str) -> Query:
    """Shipping priority: segment + order/ship date window."""
    segment = int(rng.integers(0, len(SEGMENTS)))
    date = days(1995, 3, 1) + int(rng.integers(0, 31))
    return Query.build(
        table,
        select=["l_orderkey", "l_extendedprice", "l_discount", "o_orderdate", "o_shippriority"],
        where={
            "c_mktsegment": (segment, segment),
            "o_orderdate": _clip(table, "o_orderdate", -(10**9), date - 1),
            "l_shipdate": _clip(table, "l_shipdate", date + 1, 10**9),
        },
        label=label,
    )


def _q6(table: TableMeta, rng: np.random.Generator, label: str) -> Query:
    """Forecasting revenue change: one ship year, tight discount, quantity cap."""
    year = 1993 + int(rng.integers(0, 5))
    discount = rng.integers(2, 10) / 100.0
    quantity = float(rng.integers(24, 26))
    return Query.build(
        table,
        select=["l_extendedprice", "l_discount"],
        where={
            "l_shipdate": _clip(table, "l_shipdate", days(year, 1, 1), days(year + 1, 1, 1) - 1),
            "l_discount": (discount - 0.01001, discount + 0.01001),
            "l_quantity": _clip(table, "l_quantity", -(10**9), quantity - 0.5),
        },
        label=label,
    )


def _q8(table: TableMeta, rng: np.random.Generator, label: str) -> Query:
    """National market share: region + part type + two-year order window."""
    region = int(rng.integers(0, len(REGIONS)))
    part_type = int(rng.integers(0, len(PART_TYPES)))
    return Query.build(
        table,
        select=["o_orderdate", "l_extendedprice", "l_discount", "s_nation"],
        where={
            "o_orderdate": _clip(
                table, "o_orderdate", days(1995, 1, 1), days(1996, 12, 31)
            ),
            "r_name": (region, region),
            "p_type": (part_type, part_type),
        },
        label=label,
    )


def _q10(table: TableMeta, rng: np.random.Generator, label: str) -> Query:
    """Returned item reporting: one quarter of orders with returned lines."""
    month_index = int(rng.integers(0, 24))  # first of month in 1993-02 .. 1995-01
    year, month = divmod(month_index + 1, 12)  # +1: start at February 1993
    start = days(1993 + year, month + 1, 1)
    end_index = month_index + 3
    end_year, end_month = divmod(end_index + 1, 12)
    end = days(1993 + end_year, end_month + 1, 1) - 1
    flag = RETURN_FLAGS.code("R")
    return Query.build(
        table,
        select=[
            "c_custkey",
            "c_name",
            "l_extendedprice",
            "l_discount",
            "c_acctbal",
            "n_name",
            "c_address",
            "c_phone",
            "c_comment",
        ],
        where={
            "o_orderdate": _clip(table, "o_orderdate", start, end),
            "l_returnflag": (flag, flag),
        },
        label=label,
    )


def _q14(table: TableMeta, rng: np.random.Generator, label: str) -> Query:
    """Promotion effect: one ship month, PROMO part types."""
    month_index = int(rng.integers(0, 60))  # 1993-01 .. 1997-12
    year, month = divmod(month_index, 12)
    start = days(1993 + year, month + 1, 1)
    end_index = month_index + 1
    end_year, end_month = divmod(end_index, 12)
    end = days(1993 + end_year, end_month + 1, 1) - 1
    promo_lo, promo_hi = PART_TYPES.prefix_range("PROMO")
    return Query.build(
        table,
        select=["l_extendedprice", "l_discount", "p_type"],
        where={
            "l_shipdate": _clip(table, "l_shipdate", start, end),
            "p_type": (promo_lo, promo_hi),
        },
        label=label,
    )


TPCH_TEMPLATES: Dict[str, TPCHTemplate] = {
    "Q3": TPCHTemplate("Q3", _q3),
    "Q6": TPCHTemplate("Q6", _q6),
    "Q8": TPCHTemplate("Q8", _q8),
    "Q10": TPCHTemplate("Q10", _q10),
    "Q14": TPCHTemplate("Q14", _q14),
}


def tpch_workload(
    table: TableMeta,
    n_queries: int,
    seed: int = 0,
    template_names: Sequence[str] | None = None,
) -> Workload:
    """Draw ``n_queries`` equally distributed among the five templates.

    Mirrors the paper's setup of 500 random training queries and 10 random
    evaluation queries, equally distributed among Q3/Q6/Q8/Q10/Q14.
    """
    names = list(template_names) if template_names else list(TPCH_TEMPLATES)
    unknown = [n for n in names if n not in TPCH_TEMPLATES]
    if unknown:
        raise InvalidQueryError(f"unknown TPC-H templates: {unknown}")
    rng = np.random.default_rng(seed)
    queries: List[Query] = []
    for index in range(n_queries):
        template = TPCH_TEMPLATES[names[index % len(names)]]
        queries.append(template.make(table, rng, f"{template.name}-{index}"))
    return Workload(table, queries)
