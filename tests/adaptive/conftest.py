"""Fixtures for the adaptive-repartitioning suite: a layout fitted to one
workload plus a sharply different query mix to drift it with."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Query, TableSchema, Workload
from repro.layouts import BuildContext, IrregularLayout
from repro.storage import ColumnTable


@pytest.fixture()
def drift_table() -> ColumnTable:
    rng = np.random.default_rng(7)
    schema = TableSchema.uniform([f"a{i}" for i in range(1, 9)])
    columns = {
        name: rng.integers(0, 10_000, 5_000).astype(np.int32)
        for name in schema.attribute_names
    }
    return ColumnTable.build("T", schema, columns)


@pytest.fixture()
def train_workload(drift_table) -> Workload:
    meta = drift_table.meta
    return Workload(meta, [
        Query.build(meta, ["a2", "a3"], {"a1": (0, 1999)}, label="Q1"),
        Query.build(meta, ["a2", "a3"], {"a4": (5000, 9999)}, label="Q2"),
        Query.build(meta, ["a5"], {"a6": (4000, 4999)}, label="Q3"),
    ])


@pytest.fixture()
def shifted_queries(drift_table):
    """Concentrates on attributes the training workload never touched
    together — drives the drift score to 1.0."""
    meta = drift_table.meta
    return [
        Query.build(meta, ["a7", "a8"], {"a7": (0, 2999)}, label="S1"),
        Query.build(meta, ["a7", "a8"], {"a8": (7000, 9999)}, label="S2"),
    ]


@pytest.fixture()
def drift_layout(drift_table, train_workload):
    ctx = BuildContext(file_segment_bytes=8 * 1024)
    layout = IrregularLayout().build(drift_table, train_workload, ctx)
    assert layout.plan is not None and layout.plan.kind == "irregular"
    return layout
