"""Unit tests for the repartition advisor's gates."""

from __future__ import annotations

import pytest

from repro.adaptive import AdvisorConfig, RepartitionAdvisor
from repro.core import CostModel, IOModel


@pytest.fixture()
def advisor(drift_table):
    cost_model = CostModel(drift_table.meta, IOModel.from_throughput(75.0, 0.001))
    return RepartitionAdvisor(
        cost_model,
        AdvisorConfig(drift_threshold=0.3, drift_reset=0.1,
                      min_improvement=0.05, cooldown_queries=5),
    )


class TestConfigValidation:
    def test_reset_above_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdvisorConfig(drift_threshold=0.2, drift_reset=0.5)

    def test_negative_improvement_rejected(self):
        with pytest.raises(ValueError):
            AdvisorConfig(min_improvement=-0.1)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            AdvisorConfig(cooldown_queries=-1)


class TestTrigger:
    def test_below_threshold_skips(self, advisor):
        assert "below threshold" in advisor.should_consider(0.2, 100)

    def test_above_threshold_proceeds(self, advisor):
        assert advisor.should_consider(0.5, 100) is None

    def test_hysteresis_blocks_until_reset(self, advisor):
        assert advisor.should_consider(0.5, 100) is None
        advisor.migrated(100)
        # Drift stays in the band between reset and threshold, then spikes:
        # still blocked, because it never fell below the reset mark.
        assert "hysteresis" in advisor.should_consider(0.5, 200)
        assert "hysteresis" in advisor.should_consider(0.9, 300)
        # Once drift dips below the reset the trigger re-arms.
        assert "below threshold" in advisor.should_consider(0.05, 400)
        assert advisor.should_consider(0.5, 500) is None

    def test_cooldown_spaces_migrations(self, advisor):
        advisor.migrated(100)
        advisor.should_consider(0.05, 101)  # re-arm
        assert "cooldown" in advisor.should_consider(0.5, 103)
        assert advisor.should_consider(0.5, 105) is None


class TestAppraise:
    def test_identical_layouts_do_not_fire(
        self, advisor, drift_layout, train_workload
    ):
        partitions = tuple(drift_layout.plan)
        verdict = advisor.appraise(partitions, partitions, train_workload)
        assert not verdict.fire
        assert verdict.improvement == pytest.approx(0.0)
        assert verdict.current_cost_s == pytest.approx(verdict.candidate_cost_s)

    def test_cheaper_candidate_fires(self, advisor, drift_layout, train_workload):
        partitions = tuple(drift_layout.plan)
        # A candidate that drops a partition nothing in the window needs is
        # strictly cheaper whenever that partition was being read.
        current_cost = advisor.cost_model.cost_partitions(partitions, train_workload)
        for drop in range(len(partitions)):
            candidate = tuple(
                p for index, p in enumerate(partitions) if index != drop
            )
            cost = advisor.cost_model.cost_partitions(candidate, train_workload)
            if cost < current_cost * 0.95:
                verdict = advisor.appraise(partitions, candidate, train_workload)
                assert verdict.fire
                assert verdict.improvement > 0.05
                return
        pytest.skip("no single partition accounts for >5% of window cost")

    def test_verdict_carries_planner_estimate(
        self, advisor, drift_layout, train_workload
    ):
        partitions = tuple(drift_layout.plan)
        planner = drift_layout.executor.planner
        verdict = advisor.appraise(
            partitions, partitions, train_workload,
            drift=0.42, planner=planner,
        )
        expected = sum(
            planner.plan(q, notify=False).estimated_io_time_s
            for q in train_workload
        )
        assert verdict.planned_io_s == pytest.approx(expected)
        assert verdict.drift == 0.42

    def test_appraisal_does_not_feed_observer(
        self, advisor, drift_layout, train_workload
    ):
        from repro.adaptive import WorkloadMonitor

        planner = drift_layout.executor.planner
        monitor = WorkloadMonitor(drift_layout.table)
        planner.observer = monitor.observe
        partitions = tuple(drift_layout.plan)
        advisor.appraise(partitions, partitions, train_workload, planner=planner)
        assert monitor.n_observed == 0
