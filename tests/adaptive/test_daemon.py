"""Integration tests for the adaptive daemon's full loop."""

from __future__ import annotations

import time

import pytest

from repro.adaptive import AdaptiveConfig, AdaptiveDaemon, AdvisorConfig
from repro.errors import AdaptationError
from repro.layouts import BuildContext, ColumnLayout
from repro.storage import FaultConfig, FaultInjectingBlobStore
from repro.testing.oracle import oracle_check


def make_daemon(layout, table, **overrides):
    defaults = dict(
        window_size=32,
        advisor=AdvisorConfig(drift_threshold=0.2, drift_reset=0.1,
                              min_improvement=0.01, cooldown_queries=4),
        bytes_budget_per_cycle=1 << 30,
    )
    defaults.update(overrides)
    return AdaptiveDaemon(layout, table, AdaptiveConfig(**defaults))


def run_queries(layout, queries, repeat=1):
    for _ in range(repeat):
        for query in queries:
            layout.execute(query)


class TestConstruction:
    def test_rejects_layout_without_plan(self, drift_layout, drift_table):
        drift_layout.plan = None
        with pytest.raises(AdaptationError, match="no logical partitioning plan"):
            AdaptiveDaemon(drift_layout, drift_table)

    def test_rejects_columnar_plan(self, drift_table, train_workload):
        layout = ColumnLayout().build(
            drift_table, train_workload, BuildContext(file_segment_bytes=8 * 1024)
        )
        with pytest.raises(AdaptationError):
            AdaptiveDaemon(layout, drift_table)

    def test_attach_sets_observer_and_baseline(self, drift_layout, drift_table):
        daemon = make_daemon(drift_layout, drift_table)
        planner = drift_layout.executor.planner
        assert planner.observer is not None
        assert daemon.monitor.fitted is drift_layout.train

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(window_size=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(bytes_budget_per_cycle=0)


class TestCycle:
    def test_no_drift_no_migration(self, drift_layout, drift_table, train_workload):
        daemon = make_daemon(drift_layout, drift_table)
        run_queries(drift_layout, train_workload, repeat=4)
        report = daemon.run_cycle()
        assert not report.fired
        assert "below threshold" in report.reason
        assert daemon.stats.n_migrations == 0

    def test_drift_triggers_migration_and_results_stay_exact(
        self, drift_layout, drift_table, train_workload, shifted_queries
    ):
        daemon = make_daemon(drift_layout, drift_table)
        run_queries(drift_layout, train_workload)
        run_queries(drift_layout, shifted_queries, repeat=16)
        report = daemon.run_cycle()
        assert report.fired, report.reason
        assert report.bytes_rewritten > 0
        assert report.new_pids
        assert daemon.stats.n_migrations == 1
        assert daemon.stats.bytes_rewritten == report.bytes_rewritten
        # The layout's logical plan tracks the migration.
        assert {p.pid for p in drift_layout.plan} == set(daemon._current)
        # Drift is re-anchored on the window the new layout was fitted to.
        assert daemon.monitor.drift_score() == pytest.approx(0.0)
        # Every query — old mix and new — still matches the dense oracle.
        for query in list(train_workload) + shifted_queries:
            assert oracle_check(drift_layout, drift_table, query) is None

    def test_oscillating_workload_does_not_thrash(
        self, drift_layout, drift_table, train_workload, shifted_queries
    ):
        daemon = make_daemon(drift_layout, drift_table)
        run_queries(drift_layout, shifted_queries, repeat=16)
        assert daemon.run_cycle().fired
        # Same shifted mix keeps flowing: drift stays ~0, nothing re-fires.
        for _ in range(3):
            run_queries(drift_layout, shifted_queries, repeat=8)
            assert not daemon.run_cycle().fired
        assert daemon.stats.n_migrations == 1

    def test_budget_too_small_skips_cycle(
        self, drift_layout, drift_table, shifted_queries
    ):
        daemon = make_daemon(drift_layout, drift_table, bytes_budget_per_cycle=1)
        run_queries(drift_layout, shifted_queries, repeat=16)
        report = daemon.run_cycle()
        assert not report.fired
        assert "budget" in report.reason
        assert daemon.stats.n_skipped == 1

    def test_aborted_migration_keeps_old_layout_queryable(
        self, drift_layout, drift_table, train_workload, shifted_queries
    ):
        daemon = make_daemon(drift_layout, drift_table)
        run_queries(drift_layout, shifted_queries, repeat=16)
        manager = drift_layout.manager
        pids_before = manager.pids()
        inner = manager.store
        manager.store = FaultInjectingBlobStore(
            inner, config=FaultConfig(transient_error_rate=1.0), seed=5
        )
        report = daemon.run_cycle()
        manager.store = inner
        assert report.aborted and not report.fired
        assert daemon.stats.n_aborted == 1
        assert manager.pids() == pids_before
        for query in list(train_workload) + shifted_queries:
            assert oracle_check(drift_layout, drift_table, query) is None
        # The daemon retries on a later cycle once the storage recovers.
        run_queries(drift_layout, shifted_queries, repeat=2)
        retry = daemon.run_cycle()
        assert retry.fired, retry.reason

    def test_migration_exact_under_persistent_fault_injection(
        self, drift_layout, drift_table, train_workload, shifted_queries
    ):
        # Faulty-but-recoverable storage for the whole scenario: queries
        # before, during and after the migration all stay oracle-exact.  The
        # layout has no replicas to degrade onto, so give the retry loop
        # enough budget that every read eventually lands.
        from repro.storage import RetryPolicy

        manager = drift_layout.manager
        manager.retry_policy = RetryPolicy(max_attempts=8)
        manager.store = FaultInjectingBlobStore(
            manager.store,
            config=FaultConfig(transient_error_rate=0.3, corruption_rate=0.1),
            seed=11,
        )
        daemon = make_daemon(drift_layout, drift_table)
        for query in train_workload:
            assert oracle_check(drift_layout, drift_table, query) is None
        run_queries(drift_layout, shifted_queries, repeat=16)
        report = daemon.run_cycle()
        assert report.fired, report.reason
        for query in list(train_workload) + shifted_queries:
            assert oracle_check(drift_layout, drift_table, query) is None

    def test_cycle_every_runs_cycles_from_observer(
        self, drift_layout, drift_table, shifted_queries
    ):
        daemon = make_daemon(drift_layout, drift_table, cycle_every=10)
        run_queries(drift_layout, shifted_queries, repeat=16)
        assert daemon.stats.n_cycles >= 3
        assert daemon.stats.n_migrations >= 1
        for query in shifted_queries:
            assert oracle_check(drift_layout, drift_table, query) is None


class TestBackgroundThread:
    def test_start_stop(self, drift_layout, drift_table, shifted_queries):
        daemon = make_daemon(drift_layout, drift_table, poll_interval_s=0.01)
        daemon.start()
        assert daemon.running
        daemon.start()  # idempotent
        run_queries(drift_layout, shifted_queries, repeat=16)
        deadline = time.monotonic() + 5.0
        while daemon.stats.n_migrations == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        daemon.stop()
        assert not daemon.running
        assert daemon.stats.n_migrations >= 1
        for query in shifted_queries:
            assert oracle_check(drift_layout, drift_table, query) is None
