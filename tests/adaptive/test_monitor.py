"""Unit tests for the workload monitor and its drift score."""

from __future__ import annotations

import pytest

from repro.adaptive import WorkloadMonitor, accessed_pids, total_variation
from repro.core import Query, Workload


class TestTotalVariation:
    def test_identical_histograms(self):
        assert total_variation({1: 3, 2: 1}, {1: 3, 2: 1}) == 0.0

    def test_scale_free(self):
        assert total_variation({1: 1, 2: 1}, {1: 10, 2: 10}) == 0.0

    def test_disjoint_supports(self):
        assert total_variation({1: 5}, {2: 5}) == pytest.approx(1.0)

    def test_empty_side_is_zero(self):
        assert total_variation({}, {1: 3}) == 0.0
        assert total_variation({1: 3}, {}) == 0.0

    def test_partial_shift(self):
        score = total_variation({1: 1, 2: 1}, {1: 1, 3: 1})
        assert score == pytest.approx(0.5)


class TestWindow:
    def test_window_is_bounded(self, drift_table, train_workload):
        monitor = WorkloadMonitor(drift_table.meta, window_size=4)
        for _ in range(5):
            for query in train_workload:
                monitor.record(query)
        assert len(monitor) == 4
        assert monitor.n_observed == 15

    def test_window_workload_preserves_order(self, drift_table, train_workload):
        monitor = WorkloadMonitor(drift_table.meta, window_size=8)
        for query in train_workload:
            monitor.record(query)
        window = monitor.window_workload()
        assert isinstance(window, Workload)
        assert [q.label for q in window] == ["Q1", "Q2", "Q3"]

    def test_rejects_nonpositive_window(self, drift_table):
        with pytest.raises(ValueError):
            WorkloadMonitor(drift_table.meta, window_size=0)

    def test_observed_partition_counts(self, drift_table, train_workload):
        monitor = WorkloadMonitor(drift_table.meta)
        monitor.record(train_workload[0], pids=[0, 1])
        monitor.record(train_workload[1], pids=[1])
        assert monitor.observed_partition_counts() == {0: 1, 1: 2}


class TestDrift:
    def test_no_baseline_means_no_drift(self, drift_table, train_workload):
        monitor = WorkloadMonitor(drift_table.meta)
        monitor.record(train_workload[0], pids=[0])
        assert monitor.drift_score() == 0.0

    def test_empty_window_means_no_drift(self, drift_layout, train_workload):
        monitor = WorkloadMonitor(drift_layout.table)
        monitor.rebaseline(train_workload, drift_layout.executor.planner)
        assert monitor.fitted is train_workload
        assert monitor.drift_score() == 0.0

    def test_train_like_traffic_scores_zero(self, drift_layout, train_workload):
        planner = drift_layout.executor.planner
        monitor = WorkloadMonitor(drift_layout.table)
        monitor.rebaseline(train_workload, planner)
        for query in train_workload:
            monitor.observe(query, planner.plan(query, notify=False))
        assert monitor.drift_score() == pytest.approx(0.0)

    def test_shifted_traffic_scores_high(
        self, drift_layout, train_workload, shifted_queries
    ):
        planner = drift_layout.executor.planner
        monitor = WorkloadMonitor(drift_layout.table, window_size=16)
        monitor.rebaseline(train_workload, planner)
        for _ in range(8):
            for query in shifted_queries:
                monitor.observe(query, planner.plan(query, notify=False))
        assert monitor.drift_score() > 0.5

    def test_attribute_drift_detected_without_partition_drift(
        self, drift_table, train_workload
    ):
        # Same partitions accessed, different attribute mix: the attribute
        # histogram alone must raise the score.
        meta = drift_table.meta
        monitor = WorkloadMonitor(meta)
        monitor._fitted = train_workload
        monitor._baseline_pids = {0: 3}
        monitor._baseline_attrs = {"a1": 3}
        other = Query.build(meta, ["a8"], {"a7": (0, 999)})
        monitor.record(other, pids=[0])
        assert monitor.drift_score() == pytest.approx(1.0)

    def test_rebaseline_remaps_window_entries(
        self, drift_layout, train_workload
    ):
        # Entries recorded with stale pids are re-planned on rebaseline, so
        # a post-migration monitor never reports phantom drift.
        planner = drift_layout.executor.planner
        monitor = WorkloadMonitor(drift_layout.table)
        for query in train_workload:
            monitor.record(query, pids=[997, 998])  # nonsense stale pids
        monitor.rebaseline(train_workload, planner)
        expected = {
            pid
            for query in train_workload
            for pid in accessed_pids(planner.plan(query, notify=False))
        }
        assert set(monitor.observed_partition_counts()) == expected
        assert monitor.drift_score() == pytest.approx(0.0)


class TestPlannerIntegration:
    def test_observer_feeds_monitor(self, drift_layout, train_workload):
        planner = drift_layout.executor.planner
        monitor = WorkloadMonitor(drift_layout.table)
        planner.observer = monitor.observe
        drift_layout.execute(train_workload[0])
        assert monitor.n_observed == 1
        assert len(monitor) == 1

    def test_notify_false_suppresses_observer(self, drift_layout, train_workload):
        planner = drift_layout.executor.planner
        monitor = WorkloadMonitor(drift_layout.table)
        planner.observer = monitor.observe
        planner.plan(train_workload[0], notify=False)
        assert monitor.n_observed == 0

    def test_accessed_pids_sorted_unique(self, drift_layout, train_workload):
        planner = drift_layout.executor.planner
        pids = accessed_pids(planner.plan(train_workload[0], notify=False))
        assert list(pids) == sorted(set(pids))
