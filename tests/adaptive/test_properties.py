"""Property-based tests (hypothesis) for adaptive repartitioning.

Two invariants carry the whole subsystem:

* **cell exactness** — whatever region the incremental repartitioner is
  scoped to, its proposal covers exactly that region's (attribute, tuple)
  cells: no gaps, no overlaps, for any random table, layout and window;
* **query transparency** — a stream of queries interleaved with migrations
  returns byte-identical results to the dense numpy reference at every
  point, including when every read goes through fault-injecting storage.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveDaemon,
    AdvisorConfig,
    IncrementalRepartitioner,
)
from repro.core import CostModel, IOModel, Workload
from repro.layouts import BuildContext, IrregularLayout
from repro.storage import FaultConfig, FaultInjectingBlobStore, RetryPolicy
from repro.testing.oracle import (
    oracle_check,
    random_query,
    random_table,
    random_workload,
)

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def concrete_cells(segments, table):
    cells = set()
    total = 0
    for segment in segments:
        mask = table.mask_for_box(segment.ranges, segment.tight)
        tids = np.nonzero(mask)[0]
        total += len(segment.attributes) * len(tids)
        for attribute in segment.attributes:
            cells.update((attribute, int(tid)) for tid in tids)
    return cells, total


def build_irregular(seed, n_queries=4):
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_attrs=5, n_tuples=400)
    train = random_workload(rng, table, n_queries=n_queries)
    ctx = BuildContext(file_segment_bytes=2048)
    layout = IrregularLayout(selection_enabled=False).build(table, train, ctx)
    return rng, table, train, layout


class TestCellExactness:
    @given(seed=st.integers(0, 2**31), scope_seed=st.integers(0, 2**31))
    @SLOW
    def test_refined_scope_covers_exactly_the_input_region(
        self, seed, scope_seed
    ):
        rng, table, train, layout = build_irregular(seed)
        current = {p.pid: p for p in layout.plan}
        scope_rng = np.random.default_rng(scope_seed)
        n_scope = int(scope_rng.integers(1, len(current) + 1))
        scope = sorted(
            int(pid) for pid in scope_rng.choice(
                sorted(current), size=n_scope, replace=False
            )
        )
        window = Workload(
            table.meta,
            [random_query(scope_rng, table, label=f"w{i}") for i in range(4)],
        )
        cost_model = CostModel(table.meta, IOModel.from_throughput(75.0, 0.001))
        plan = IncrementalRepartitioner(cost_model).propose(
            current, scope, window, next_pid=1000
        )
        scope_segments = [
            segment for pid in scope for segment in current[pid].segments
        ]
        new_segments = [
            segment
            for partition in plan.new_partitions
            for segment in partition.segments
        ]
        expected, _ = concrete_cells(scope_segments, table)
        got, multiplicity = concrete_cells(new_segments, table)
        assert got == expected            # no gaps, nothing leaks in
        assert multiplicity == len(got)   # no cell stored twice


class TestInterleavedMigrations:
    @given(seed=st.integers(0, 2**31))
    @SLOW
    def test_queries_oracle_exact_across_migrations(self, seed):
        rng, table, train, layout = build_irregular(seed)
        daemon = AdaptiveDaemon(
            layout, table,
            AdaptiveConfig(
                window_size=16,
                advisor=AdvisorConfig(drift_threshold=0.05, drift_reset=0.0,
                                      min_improvement=0.0, cooldown_queries=0),
                bytes_budget_per_cycle=1 << 30,
            ),
        )
        for round_index in range(4):
            queries = [
                random_query(rng, table, label=f"r{round_index}q{i}")
                for i in range(3)
            ]
            for query in queries:
                assert oracle_check(layout, table, query) is None
            daemon.run_cycle()
            for query in queries:
                assert oracle_check(layout, table, query) is None

    @given(seed=st.integers(0, 2**31))
    @SLOW
    def test_oracle_exact_across_migrations_under_faults(self, seed):
        rng, table, train, layout = build_irregular(seed)
        # No replicas to degrade onto, so the retry budget must outlast any
        # plausible run of injected faults for every seed hypothesis picks.
        layout.manager.retry_policy = RetryPolicy(max_attempts=10)
        layout.manager.store = FaultInjectingBlobStore(
            layout.manager.store,
            config=FaultConfig(transient_error_rate=0.15, corruption_rate=0.05),
            seed=seed,
        )
        daemon = AdaptiveDaemon(
            layout, table,
            AdaptiveConfig(
                window_size=16,
                advisor=AdvisorConfig(drift_threshold=0.05, drift_reset=0.0,
                                      min_improvement=0.0, cooldown_queries=0),
                bytes_budget_per_cycle=1 << 30,
            ),
        )
        for round_index in range(3):
            queries = [
                random_query(rng, table, label=f"r{round_index}q{i}")
                for i in range(2)
            ]
            for query in queries:
                assert oracle_check(layout, table, query) is None
            daemon.run_cycle()
            for query in queries:
                assert oracle_check(layout, table, query) is None
