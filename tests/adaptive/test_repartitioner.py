"""Unit tests for migration proposal and execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import IncrementalRepartitioner
from repro.core import CostModel, IOModel, Workload
from repro.errors import AdaptationError, StorageError
from repro.storage import FaultConfig, FaultInjectingBlobStore


def cell_set(segments, table):
    """Concrete (attribute, tuple) cells a list of logical segments covers."""
    cells = set()
    for segment in segments:
        mask = table.mask_for_box(segment.ranges, segment.tight)
        tids = np.nonzero(mask)[0]
        for attribute in segment.attributes:
            cells.update((attribute, int(tid)) for tid in tids)
    return cells


def cell_count(segments, table):
    """Cells with multiplicity — equals ``len(cell_set)`` iff no overlap."""
    total = 0
    for segment in segments:
        mask = table.mask_for_box(segment.ranges, segment.tight)
        total += len(segment.attributes) * int(mask.sum())
    return total


@pytest.fixture()
def repartitioner(drift_table):
    cost_model = CostModel(drift_table.meta, IOModel.from_throughput(75.0, 0.001))
    return IncrementalRepartitioner(cost_model)


def current_mapping(layout):
    return {partition.pid: partition for partition in layout.plan}


class TestPropose:
    def test_unknown_scope_pid_rejected(
        self, repartitioner, drift_layout, train_workload
    ):
        with pytest.raises(AdaptationError, match="not in the current plan"):
            repartitioner.propose(
                current_mapping(drift_layout), [999], train_workload, 100
            )

    def test_empty_scope_yields_empty_plan(
        self, repartitioner, drift_layout, train_workload
    ):
        plan = repartitioner.propose(
            current_mapping(drift_layout), [], train_workload, 100
        )
        assert plan.is_empty
        assert plan.new_partitions == ()

    def test_fresh_pids_start_at_next_pid(
        self, repartitioner, drift_layout, drift_table, shifted_queries
    ):
        current = current_mapping(drift_layout)
        window = Workload(drift_table.meta, shifted_queries * 4)
        plan = repartitioner.propose(current, list(current), window, next_pid=41)
        assert plan.new_partitions
        pids = [partition.pid for partition in plan.new_partitions]
        assert pids == list(range(41, 41 + len(pids)))
        assert plan.tuner_stats["elapsed_s"] >= 0.0

    def test_proposal_covers_exactly_the_scope_cells(
        self, repartitioner, drift_layout, drift_table, shifted_queries
    ):
        current = current_mapping(drift_layout)
        window = Workload(drift_table.meta, shifted_queries * 4)
        scope = sorted(current)[:2]
        plan = repartitioner.propose(current, scope, window, next_pid=50)
        scope_segments = [
            segment for pid in scope for segment in current[pid].segments
        ]
        new_segments = [
            segment
            for partition in plan.new_partitions
            for segment in partition.segments
        ]
        assert cell_set(new_segments, drift_table) == cell_set(
            scope_segments, drift_table
        )
        # And the new partitions never store the same cell twice.
        assert cell_count(new_segments, drift_table) == len(
            cell_set(new_segments, drift_table)
        )


class TestExecute:
    def test_empty_plan_is_a_noop(self, repartitioner, drift_layout, drift_table):
        from repro.adaptive import MigrationPlan

        version = drift_layout.manager.catalog_version
        infos = repartitioner.execute(
            MigrationPlan(scope_pids=(), new_partitions=()),
            drift_layout.manager,
            drift_table,
        )
        assert infos == []
        assert drift_layout.manager.catalog_version == version

    def test_execute_swaps_scope_for_new_partitions(
        self, repartitioner, drift_layout, drift_table, shifted_queries
    ):
        manager = drift_layout.manager
        current = current_mapping(drift_layout)
        window = Workload(drift_table.meta, shifted_queries * 4)
        plan = repartitioner.propose(
            current, list(current), window, manager.next_pid()
        )
        infos = repartitioner.execute(plan, manager, drift_table)
        assert {info.pid for info in infos} == set(
            partition.pid for partition in plan.new_partitions
        )
        assert set(manager.pids()) == {p.pid for p in plan.new_partitions}
        assert set(manager.retired_pids()) == set(plan.scope_pids)

    def test_aborted_execute_leaves_catalog_intact(
        self, repartitioner, drift_layout, drift_table, shifted_queries
    ):
        manager = drift_layout.manager
        pids_before = manager.pids()
        version_before = manager.catalog_version
        current = current_mapping(drift_layout)
        window = Workload(drift_table.meta, shifted_queries * 4)
        plan = repartitioner.propose(
            current, list(current), window, manager.next_pid()
        )
        # Every read faults: staging verification cannot succeed.
        inner = manager.store
        manager.store = FaultInjectingBlobStore(
            inner, config=FaultConfig(transient_error_rate=1.0), seed=2
        )
        with pytest.raises(StorageError):
            repartitioner.execute(plan, manager, drift_table, verify=True)
        manager.store = inner
        assert manager.pids() == pids_before
        assert manager.retired_pids() == ()
        assert manager.catalog_version == version_before
        # The old partitions are still readable — nothing was destroyed.
        for pid in pids_before:
            partition, _delta = manager.load(pid)
            assert partition.pid == pid
        # No staged orphan blobs survive the rollback.
        live_keys = {manager.info(pid).key for pid in pids_before}
        assert set(inner.keys()) == live_keys
