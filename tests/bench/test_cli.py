"""Unit tests for the jigsaw-bench CLI."""

import pytest

from repro.cli import _config_for, _parse_value, main
from repro.bench.experiments import fig10_inmemory


class TestParsing:
    def test_parse_literals(self):
        assert _parse_value("3") == 3
        assert _parse_value("0.5") == 0.5
        assert _parse_value("(1, 2)") == (1, 2)
        assert _parse_value("balos") == "balos"

    def test_config_overrides(self):
        config = _config_for(fig10_inmemory, ["n_tuples=123", "selectivities=(0.5,)"])
        assert config.n_tuples == 123
        assert config.selectivities == (0.5,)

    def test_bad_override_key_rejected(self):
        with pytest.raises(SystemExit):
            _config_for(fig10_inmemory, ["nope=1"])

    def test_bad_override_syntax_rejected(self):
        with pytest.raises(SystemExit):
            _config_for(fig10_inmemory, ["justakey"])


class TestMain:
    def test_runs_fig10_quickly(self, capsys):
        exit_code = main(
            ["fig10", "--set", "n_tuples=5000", "--set", "n_attrs=4",
             "--set", "n_summed=3", "--set", "selectivities=(0.5,)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "Jigsaw-Mem" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestExplainCommand:
    SQL = "SELECT a1, a2 FROM oracle WHERE a1 BETWEEN 100 AND 400"

    def test_explain_prints_a_plan(self, capsys):
        exit_code = main(["explain", self.SQL])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN SELECT a1, a2" in out
        assert "logical plan:" in out
        assert "physical plan:" in out
        assert "actual:" not in out

    def test_explain_run_appends_actuals(self, capsys):
        exit_code = main(["explain", "--run", self.SQL])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "actual:" in out
        assert "partition reads" in out

    def test_explain_threaded_engine(self, capsys):
        exit_code = main(["explain", "--engine", "jigsaw-s", "--run", self.SQL])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "engine: jigsaw-s" in out
        assert "actual:" in out

    def test_explain_accepts_explain_keyword_in_sql(self, capsys):
        assert main(["explain", "EXPLAIN " + self.SQL]) == 0
        assert "EXPLAIN SELECT" in capsys.readouterr().out

    def test_explain_other_layouts(self, capsys):
        for layout in ("natural", "replicated"):
            assert main(["explain", "--layout", layout, self.SQL]) == 0
            assert f"layout {layout!r}" in capsys.readouterr().out

    def test_explain_requires_sql(self):
        with pytest.raises(SystemExit):
            main(["explain"])

    def test_sql_rejected_without_explain(self):
        with pytest.raises(SystemExit):
            main(["fig10", self.SQL])

    def test_unknown_layout_rejected(self):
        with pytest.raises(SystemExit):
            main(["explain", "--layout", "nope", self.SQL])

    def test_explain_analyze_flag_appends_tree(self, capsys):
        exit_code = main(["explain", "--analyze", self.SQL])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "analyze (per-operator actuals" in out
        assert "(unattributed)" in out
        assert "actual:" in out

    def test_explain_analyze_keyword_in_sql(self, capsys):
        exit_code = main(["explain", "EXPLAIN ANALYZE " + self.SQL])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "analyze (per-operator actuals" in out


class TestProfileCommand:
    def test_profile_writes_trace_and_summary(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        exit_code = main(
            ["profile", "--n-tuples", "200", "--trace-out", str(trace_path),
             "--top", "5"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "hotspots over" in out
        assert "exec.query" in out
        lines = trace_path.read_text().splitlines()
        assert lines, "profile wrote no spans"
        record = json.loads(lines[0])
        assert {"name", "span_id", "sim_io_s", "attrs"} <= set(record)

    def test_profile_metrics_flag_prints_exposition(self, tmp_path, capsys):
        exit_code = main(
            ["profile", "--n-tuples", "200",
             "--trace-out", str(tmp_path / "t.jsonl"), "--metrics"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "jigsaw_queries_total" in out
        assert "# TYPE" in out

    def test_profile_rejects_sql(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", "SELECT a1 FROM oracle"])
