"""Unit tests for the jigsaw-bench CLI."""

import pytest

from repro.cli import _config_for, _parse_value, main
from repro.bench.experiments import fig10_inmemory


class TestParsing:
    def test_parse_literals(self):
        assert _parse_value("3") == 3
        assert _parse_value("0.5") == 0.5
        assert _parse_value("(1, 2)") == (1, 2)
        assert _parse_value("balos") == "balos"

    def test_config_overrides(self):
        config = _config_for(fig10_inmemory, ["n_tuples=123", "selectivities=(0.5,)"])
        assert config.n_tuples == 123
        assert config.selectivities == (0.5,)

    def test_bad_override_key_rejected(self):
        with pytest.raises(SystemExit):
            _config_for(fig10_inmemory, ["nope=1"])

    def test_bad_override_syntax_rejected(self):
        with pytest.raises(SystemExit):
            _config_for(fig10_inmemory, ["justakey"])


class TestMain:
    def test_runs_fig10_quickly(self, capsys):
        exit_code = main(
            ["fig10", "--set", "n_tuples=5000", "--set", "n_attrs=4",
             "--set", "n_summed=3", "--set", "selectivities=(0.5,)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "Jigsaw-Mem" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
