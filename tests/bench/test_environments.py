"""Unit tests for machines and context scaling."""

import pytest

from repro.bench.environments import (
    BALOS,
    C5_9XLARGE,
    MACHINES,
    PAPER_HAP_TABLE_BYTES,
    T2_2XLARGE,
    scaled_context,
)


class TestMachines:
    def test_table_3_configuration(self):
        assert BALOS.cores == 6 and BALOS.memory_gb == 62
        assert T2_2XLARGE.cores == 8 and T2_2XLARGE.memory_gb == 32
        assert C5_9XLARGE.cores == 36 and C5_9XLARGE.memory_gb == 72
        assert set(MACHINES) == {"balos", "t2.2xlarge", "c5.9xlarge"}

    def test_device_speeds(self):
        assert BALOS.device.io_model.throughput_mb_per_s == pytest.approx(75.0)
        assert C5_9XLARGE.device.io_model.throughput_mb_per_s == pytest.approx(1000.0)


class TestScaledContext:
    def test_scale_ratio(self):
        table_bytes = PAPER_HAP_TABLE_BYTES // 1000
        ctx, scale = scaled_context(BALOS, table_bytes)
        assert scale == pytest.approx(1e-3)
        # alpha untouched; beta scales with the realized segment size so the
        # per-request share of a segment read stays at the paper's ratio.
        assert ctx.device_profile.io_model.alpha == BALOS.device.io_model.alpha
        beta_scale = ctx.file_segment_bytes / (4 * 1024 * 1024)
        assert ctx.device_profile.io_model.beta == pytest.approx(
            BALOS.device.io_model.beta * beta_scale
        )

    def test_beta_preserves_segment_read_composition(self):
        """io(scaled segment) has the same alpha/beta split as io(4 MB)."""
        ctx, _scale = scaled_context(BALOS, PAPER_HAP_TABLE_BYTES // 500)
        model = ctx.device_profile.io_model
        paper_model = BALOS.device.io_model
        scaled_share = model.beta / model.io_time(ctx.file_segment_bytes)
        paper_share = paper_model.beta / paper_model.io_time(4 * 1024 * 1024)
        assert scaled_share == pytest.approx(paper_share, rel=1e-6)

    def test_segment_scales_with_floor(self):
        ctx, _scale = scaled_context(BALOS, 1000, min_segment_bytes=32 * 1024)
        assert ctx.file_segment_bytes == 32 * 1024
        big_ctx, _s = scaled_context(BALOS, PAPER_HAP_TABLE_BYTES)
        assert big_ctx.file_segment_bytes == 4 * 1024 * 1024

    def test_jigsaw_window_follows_segment(self):
        ctx, _scale = scaled_context(BALOS, PAPER_HAP_TABLE_BYTES // 100)
        assert ctx.min_size == ctx.file_segment_bytes
        assert ctx.max_size == 8 * ctx.file_segment_bytes

    def test_cpu_model_scaled_by_cores(self):
        ctx, _scale = scaled_context(C5_9XLARGE, 10**6)
        assert ctx.cpu_model.cores == 36

    def test_paper_equivalence_rescaling(self):
        """time / scale recovers paper-magnitude numbers: a full
        segment-at-a-time scan of the scaled table rescales to a full
        segment-at-a-time scan of the paper's table."""
        table_bytes = PAPER_HAP_TABLE_BYTES // 500
        ctx, scale = scaled_context(BALOS, table_bytes)
        n_segments = table_bytes / ctx.file_segment_bytes
        scaled_time = n_segments * ctx.device_profile.io_model.io_time(
            ctx.file_segment_bytes
        )
        paper_segments = PAPER_HAP_TABLE_BYTES / (4 * 1024 * 1024)
        paper_time = paper_segments * BALOS.device.io_model.io_time(4 * 1024 * 1024)
        assert scaled_time / scale == pytest.approx(paper_time, rel=1e-6)
