"""Smoke + shape tests for every experiment driver, at miniature scale.

Each test runs the driver with a tiny config and asserts the *structure* of
the result plus the key qualitative relationships the paper reports.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    fig05_parallelization,
    fig06_selectivity,
    fig07_projectivity,
    fig08_templates,
    fig09_tpch,
    fig10_inmemory,
    fig11_dbsize,
    fig12_partitioning,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [
            "ablations", "adapt",
            "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig09-join", "fig10", "fig11", "fig12",
        ]

    def test_every_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)


class TestFig05:
    def test_shapes(self):
        cfg = fig05_parallelization.Fig05Config(
            n_tuples=20_000, n_attrs=32, n_train=16, thread_counts=(8, 36)
        )
        result = fig05_parallelization.run(cfg)
        rows = {(r["threads"], r["strategy"]): r for r in result.rows}
        # Paper: "Looking at the computation cycles, Irregular-L is faster
        # than Irregular-S when there are 8 threads"...
        assert (
            rows[(8, "Irregular-L")]["compute_s"] < rows[(8, "Irregular-S")]["compute_s"]
        )
        # ... and with many threads Irregular-S wins overall.
        assert rows[(36, "Irregular-S")]["total_s"] < rows[(36, "Irregular-L")]["total_s"]
        assert rows[(36, "Irregular-S")]["io_s"] > rows[(8, "Irregular-S")]["io_s"]
        assert rows[(36, "Irregular-L")]["compute_s"] >= rows[(8, "Irregular-L")]["compute_s"]
        assert rows[(36, "Irregular-S")]["compute_s"] <= rows[(8, "Irregular-S")]["compute_s"]


@pytest.fixture(scope="module")
def tiny_sweep_kwargs():
    return dict(
        n_tuples=6_000, n_attrs=32, n_train=24, n_eval=2, schism_sample=200,
        min_segment_bytes=4 * 1024,
    )


class TestFig06:
    def test_structure_and_selectivity_shape(self, tiny_sweep_kwargs):
        cfg = fig06_selectivity.Fig06Config(
            selectivities=(0.05, 1.0),
            projectivity=6,
            layouts=("Column", "Irregular"),
            **tiny_sweep_kwargs,
        )
        result = fig06_selectivity.run(cfg)
        assert len(result.rows) == 2 * 2  # 2 selectivities x 2 layouts
        low = {r["layout"]: r for r in result.filtered(selectivity=0.05)}
        # At low selectivity Irregular reads less than Column.
        assert low["Irregular"]["mb_read"] < low["Column"]["mb_read"]
        full = {r["layout"]: r for r in result.filtered(selectivity=1.0)}
        # At 100% Jigsaw's selection phase picks the columnar layout.
        assert full["Irregular"]["jigsaw_pick"] == "Column"


class TestFig07:
    def test_projectivity_shape(self, tiny_sweep_kwargs):
        kwargs = dict(tiny_sweep_kwargs, n_tuples=20_000)
        cfg = fig07_projectivity.Fig07Config(
            projectivities=(1, 8),
            layouts=("Column", "Irregular"),
            **kwargs,
        )
        result = fig07_projectivity.run(cfg)
        narrow = {r["layout"]: r for r in result.filtered(projectivity=1)}
        wide = {r["layout"]: r for r in result.filtered(projectivity=8)}
        # Column wins at projectivity 1 (the tuner falls back to it);
        # Irregular reads less once a quarter of the table is projected.
        assert narrow["Column"]["time_s"] <= narrow["Irregular"]["time_s"]
        assert wide["Irregular"]["mb_read"] < wide["Column"]["mb_read"]


class TestFig08:
    def test_template_count_shape(self, tiny_sweep_kwargs):
        cfg = fig08_templates.Fig08Config(
            template_counts=(2, 6),
            projectivity=6,
            layouts=("Column", "Irregular"),
            **tiny_sweep_kwargs,
        )
        result = fig08_templates.run(cfg)
        few = {r["layout"]: r for r in result.filtered(n_templates=2)}
        many = {r["layout"]: r for r in result.filtered(n_templates=6)}
        # Column's volume is template-independent.
        assert many["Column"]["mb_read"] == pytest.approx(
            few["Column"]["mb_read"], rel=0.05
        )
        # More templates fragment the table and erode Irregular's advantage:
        # its relative I/O never improves, and at miniature scale the tuner
        # eventually falls back to Column outright.
        few_ratio = few["Irregular"]["mb_read"] / few["Column"]["mb_read"]
        many_ratio = many["Irregular"]["mb_read"] / many["Column"]["mb_read"]
        assert many_ratio >= few_ratio * 0.9 or many["Irregular"]["jigsaw_pick"] == "Column"


class TestFig09:
    def test_tpch_shape(self):
        cfg = fig09_tpch.Fig09Config(
            scale_factor=0.002, n_train=40, n_eval=5, schism_sample=200
        )
        result = fig09_tpch.run(cfg)
        by_layout = {
            r["layout"]: r for r in result.rows if not r["layout"].startswith("bytes[")
        }
        assert set(by_layout) == {
            "Row", "Row-H", "Row-V", "Column", "Column-H", "Hierarchical", "Irregular",
        }
        # Nothing reads less than the strictly necessary volume.
        necessary = result.parameters["necessary_mb"]
        for name, row in by_layout.items():
            assert row["mb_read"] >= necessary * 0.99, name
        # Irregular beats the row-order baselines and carries tuple-ID overhead.
        assert by_layout["Irregular"]["mb_read"] < by_layout["Row"]["mb_read"]
        assert by_layout["Irregular"]["tid_overhead_mb"] > 0
        # Per-template byte rows exist for all five templates.
        template_rows = [r for r in result.rows if r["layout"].startswith("bytes[")]
        assert len(template_rows) == 5


class TestFig10:
    def test_inmemory_shape(self):
        cfg = fig10_inmemory.Fig10Config(
            n_tuples=30_000, n_attrs=8, n_summed=6, selectivities=(0.01, 1.0)
        )
        result = fig10_inmemory.run(cfg)
        full = {r["engine"]: r for r in result.filtered(selectivity=1.0)}
        assert full["MonetDB"]["time_s"] > full["Jigsaw-Mem"]["time_s"]
        assert full["Jigsaw-Disk"]["time_s"] > full["Jigsaw-Mem"]["time_s"]
        low = {r["engine"]: r for r in result.filtered(selectivity=0.01)}
        assert low["Jigsaw-Disk"]["time_s"] > low["Jigsaw-Mem"]["time_s"]
        # MonetDB's materialization grows with selectivity.
        assert (
            full["MonetDB"]["materialized_mb"] > low["MonetDB"]["materialized_mb"]
        )


class TestFig11:
    def test_warm_data_crossover(self):
        cfg = fig11_dbsize.Fig11Config(
            cardinalities=(1_000, 32_000),
            reference_tuples=4_000,
            n_attrs=32,
            n_train=16,
            n_eval=2,
        )
        result = fig11_dbsize.run(cfg)
        small = {r["layout"]: r for r in result.filtered(n_tuples=1_000)}
        big = {r["layout"]: r for r in result.filtered(n_tuples=32_000)}
        # Cached small table: Column wins. Oversized table: Irregular wins.
        assert small["Column"]["time_s"] < small["Irregular"]["time_s"]
        assert big["Irregular"]["time_s"] < big["Column"]["time_s"]
        assert small["Column"]["cache_hits"] > 0


class TestFig12:
    def test_partitioning_time_shape(self):
        cfg = fig12_partitioning.Fig12Config(
            cardinalities=(2_000, 8_000),
            query_counts=(10, 40),
            fixed_cardinality=2_000,
            fixed_queries=10,
            n_attrs=32,
        )
        result = fig12_partitioning.run(cfg)
        card = result.filtered(part="a:cardinality")
        assert len(card) == 2
        # Peloton is orders of magnitude faster than Jigsaw.
        for row in card:
            assert row["peloton_s"] < row["jigsaw_s"] / 10
        # Schism's time grows superlinearly with cardinality (4x tuples).
        schism_small = card[0]["schism_s"]
        schism_big = card[1]["schism_s"]
        assert schism_big > schism_small * 2
        # Jigsaw's time grows superlinearly with query count.
        queries = result.filtered(part="b:queries")
        assert queries[1]["jigsaw_s"] > queries[0]["jigsaw_s"]


class TestAdapt:
    def test_drift_scenario_shape(self):
        from repro.bench.experiments import adaptive

        cfg = adaptive.AdaptiveBenchConfig(
            n_tuples=4_000, n_attrs=8, n_queries=8, n_warmup=24,
            window_size=32, file_segment_kb=8,
        )
        result = adaptive.run(cfg)
        assert result.parameters["migrated"]
        adapted = {r["layout"]: r for r in result.filtered(phase="adapted")}
        shifted = {r["layout"]: r for r in result.filtered(phase="shifted")}
        # The stale static layout's cost is unchanged by the shift-side
        # measurements; the adaptive copy's simulated I/O drops strictly
        # below it after the migration.
        assert adapted["static"]["io_s"] == shifted["static"]["io_s"]
        assert adapted["adaptive"]["io_s"] < adapted["static"]["io_s"]
