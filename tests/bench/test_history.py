"""The benchmark-trajectory satellite: history appends, metric-direction
heuristics, and the ``jigsaw-bench regress`` comparison."""

from __future__ import annotations

import json

import pytest

from repro.bench.history import (
    MetricDelta,
    append_history,
    extract_metrics,
    load_history,
    metric_direction,
    run_regress,
    write_bench_json,
)
from repro.bench.reporting import ExperimentResult


def make_result(**metrics) -> ExperimentResult:
    parameters = {k: v for k, v in metrics.items() if not k.startswith("row_")}
    rows = [
        {k[len("row_"):]: v for k, v in metrics.items() if k.startswith("row_")}
    ]
    if rows == [{}]:
        rows = []
    return ExperimentResult(
        experiment="demo",
        title="Demo",
        parameters=parameters,
        columns=tuple(rows[0]) if rows else (),
        rows=rows,
        notes=["a note"],
    )


class TestDirections:
    @pytest.mark.parametrize(
        "name",
        ["io_time_s", "p99_latency_ms", "bytes_read", "cache_misses",
         "queue_wait_s", "n_rejected"],
    )
    def test_lower_better(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize(
        "name", ["qps", "speedup_vs_scan", "pool_hit_rate", "throughput"]
    )
    def test_higher_better(self, name):
        assert metric_direction(name) == "higher"

    @pytest.mark.parametrize("name", ["n_partitions", "seed", "n_segments"])
    def test_neutral_names_are_not_judged(self, name):
        assert metric_direction(name) is None


class TestExtraction:
    def test_parameters_and_column_means(self):
        result = ExperimentResult(
            experiment="e",
            title="t",
            parameters={"n_tuples": 400, "layout": "irregular", "flag": True},
            columns=("qps",),
            rows=[{"qps": 10.0, "name": "a"}, {"qps": 30.0, "name": "b"}],
            notes=[],
        )
        metrics = extract_metrics(result)
        assert metrics["n_tuples"] == 400.0
        assert metrics["col_mean_qps"] == 20.0
        assert "layout" not in metrics  # strings don't become metrics
        assert "flag" not in metrics  # nor booleans
        assert "col_mean_name" not in metrics


class TestHistoryFile:
    def test_append_and_load(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(make_result(n=1, row_qps=10.0), path=path)
        append_history(make_result(n=1, row_qps=12.0), path=path, wall_s=3.5)
        rows = load_history(path)
        assert len(rows) == 2
        assert rows[0]["experiment"] == "demo"
        assert rows[1]["metrics"]["col_mean_qps"] == 12.0
        assert rows[1]["wall_s"] == 3.5
        assert rows[0]["ts_unix_s"] <= rows[1]["ts_unix_s"]

    def test_env_var_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("BENCH_HISTORY_PATH", path)
        append_history(make_result(n=1))
        assert len(load_history()) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_write_bench_json_does_both(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "BENCH_HISTORY_PATH", str(tmp_path / "hist.jsonl")
        )
        doc_path = tmp_path / "BENCH_demo.json"
        write_bench_json(
            make_result(n=2, row_qps=5.0), str(doc_path), notes_extra=("x",)
        )
        document = json.loads(doc_path.read_text())
        assert document["experiment"] == "demo"
        assert document["notes"] == ["a note", "x"]
        assert len(load_history()) == 1


class TestRegress:
    def append_pair(self, path, first, second, experiment="demo"):
        for metrics in (first, second):
            result = make_result(**metrics)
            result.experiment = experiment
            append_history(result, path=path)

    def test_ok_within_threshold(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        self.append_pair(path, {"io_time_s": 1.0}, {"io_time_s": 1.2})
        report = run_regress(path, max_slowdown=1.5)
        assert report.ok
        assert len(report.compared) == 1
        assert "OK" in report.render()

    def test_lower_better_regression_fails(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        self.append_pair(path, {"io_time_s": 1.0}, {"io_time_s": 2.0})
        report = run_regress(path, max_slowdown=1.5)
        assert not report.ok
        assert report.regressions[0].metric == "io_time_s"
        assert report.regressions[0].ratio == pytest.approx(2.0)
        assert "REGRESSION" in report.render()

    def test_higher_better_regression_fails(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        self.append_pair(path, {"row_qps": 100.0}, {"row_qps": 40.0})
        report = run_regress(path, max_slowdown=2.0)
        assert not report.ok
        assert report.regressions[0].ratio == pytest.approx(2.5)

    def test_improvement_never_fails(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        self.append_pair(
            path,
            {"io_time_s": 2.0, "row_qps": 50.0},
            {"io_time_s": 1.0, "row_qps": 100.0},
        )
        assert run_regress(path, max_slowdown=1.01).ok

    def test_neutral_metrics_cannot_fail(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        self.append_pair(path, {"n_partitions": 4}, {"n_partitions": 400})
        report = run_regress(path, max_slowdown=1.5)
        assert report.ok and report.compared == []

    def test_single_run_is_skipped(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        append_history(make_result(io_time_s=1.0), path=path)
        report = run_regress(path, max_slowdown=1.5)
        assert report.ok
        assert report.skipped and "only 1 run" in report.skipped[0]

    def test_experiment_filter(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        self.append_pair(path, {"io_time_s": 1.0}, {"io_time_s": 9.0}, "slow")
        self.append_pair(path, {"io_time_s": 1.0}, {"io_time_s": 1.0}, "fine")
        assert run_regress(path, experiment="fine").ok
        assert not run_regress(path, experiment="slow").ok

    def test_bad_threshold_raises(self, tmp_path):
        with pytest.raises(ValueError):
            run_regress(str(tmp_path / "h.jsonl"), max_slowdown=1.0)

    def test_zero_previous_value(self):
        delta = MetricDelta("e", "io_time_s", "lower", 0.0, 0.5)
        assert delta.ratio == float("inf")
        delta = MetricDelta("e", "io_time_s", "lower", 0.0, 0.0)
        assert delta.ratio == 1.0
