"""Unit tests for experiment result formatting."""

from repro.bench.reporting import (
    ExperimentResult,
    format_bytes,
    format_seconds,
    format_table,
)


class TestFormatters:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024**2) == "3.0MiB"
        assert format_bytes(5 * 1024**3) == "5.0GiB"

    def test_format_seconds_ranges(self):
        assert format_seconds(250) == "250s"
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0042).endswith("ms")
        assert format_seconds(3e-6).endswith("us")

    def test_format_table_alignment(self):
        text = format_table(["x", "layout"], [{"x": 1, "layout": "Row"}])
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one row
        assert "layout" in lines[0]
        assert "Row" in lines[2]

    def test_format_table_missing_cell(self):
        text = format_table(["a", "b"], [{"a": 1}])
        assert text  # renders without KeyError


class TestExperimentResult:
    def test_add_row_extends_columns(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(x=1, layout="Row")
        result.add_row(x=1, layout="Column", extra=3)
        assert result.columns == ["x", "layout", "extra"]
        assert len(result.rows) == 2

    def test_filtered(self):
        result = ExperimentResult("figX", "demo")
        result.add_row(x=1, layout="Row")
        result.add_row(x=2, layout="Row")
        result.add_row(x=1, layout="Column")
        assert len(result.filtered(x=1)) == 2
        assert len(result.filtered(x=1, layout="Row")) == 1

    def test_to_text_includes_params_and_notes(self):
        result = ExperimentResult("figX", "demo", parameters={"n": 5})
        result.add_row(x=1)
        result.notes.append("a caveat")
        text = result.to_text()
        assert "figX" in text and "n=5" in text and "a caveat" in text
