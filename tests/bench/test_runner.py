"""Unit tests for the benchmark runner plumbing."""

import pytest

from repro.bench.runner import LAYOUT_BUILDERS, QueryRun, build_layouts, run_workload
from repro.engine.stats import ExecutionStats
from repro.layouts import BuildContext


class TestRegistry:
    def test_all_seven_strategies_registered(self):
        assert set(LAYOUT_BUILDERS) == {
            "Row", "Row-H", "Row-V", "Column", "Column-H", "Hierarchical", "Irregular",
        }


class TestQueryRun:
    def test_record_accumulates(self):
        run = QueryRun(layout="X")
        run.record(ExecutionStats(bytes_read=100, io_time_s=1.0))
        run.record(ExecutionStats(bytes_read=300, io_time_s=2.0))
        assert run.n_queries == 2
        assert run.total.bytes_read == 400
        assert run.mean_bytes == pytest.approx(200.0)
        assert run.mean_time_s == pytest.approx(1.5)
        assert len(run.per_query) == 2

    def test_empty_run_means(self):
        run = QueryRun(layout="X")
        assert run.mean_bytes == 0
        assert run.mean_time_s == 0


class TestBuildAndRun:
    def test_build_subset(self, small_table, small_workload, ctx):
        layouts = build_layouts(
            small_table, small_workload, ctx, names=("Row", "Column")
        )
        assert set(layouts) == {"Row", "Column"}

    def test_run_workload_cold_by_default(self, small_table, small_workload):
        ctx = BuildContext(file_segment_bytes=16 * 1024, cache_bytes=10**7)
        layouts = build_layouts(small_table, small_workload, ctx, names=("Column",))
        layout = layouts["Column"]
        cold = run_workload(layout, small_workload, drop_caches=True)
        assert cold.total.n_cache_hits == 0
        warm = run_workload(layout, small_workload, drop_caches=False)
        assert warm.total.n_cache_hits > 0
