"""Shared fixtures: small tables, workloads and build contexts — plus the
suite-wide thread-leak check."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import (
    CostModel,
    IOModel,
    Query,
    TableMeta,
    TableSchema,
    Workload,
)
from repro.layouts import BuildContext
from repro.storage import ColumnTable


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Fail any test that leaves non-daemon threads running.

    The serving tier, the prefetcher and the adaptive daemon all spawn
    threads; a test that forgets to close them would hang the interpreter
    at exit (non-daemon) or silently poison later tests' timing.  A short
    grace period lets threads that were already joining finish.
    """
    before = set(threading.enumerate())
    yield
    def leaked():
        return [
            thread
            for thread in threading.enumerate()
            if thread not in before and thread.is_alive() and not thread.daemon
        ]
    deadline = time.monotonic() + 2.0
    remaining = leaked()
    while remaining and time.monotonic() < deadline:
        time.sleep(0.01)
        remaining = leaked()
    assert not remaining, (
        "test leaked non-daemon threads: "
        + ", ".join(thread.name for thread in remaining)
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture()
def small_schema() -> TableSchema:
    return TableSchema.uniform([f"a{i}" for i in range(1, 7)])


@pytest.fixture()
def small_table(small_schema, rng) -> ColumnTable:
    """6 attributes x 5000 tuples of uniform ints in [0, 9999]."""
    columns = {
        name: rng.integers(0, 10_000, 5_000).astype(np.int32)
        for name in small_schema.attribute_names
    }
    return ColumnTable.build("T", small_schema, columns)


@pytest.fixture()
def small_meta(small_table) -> TableMeta:
    return small_table.meta


@pytest.fixture()
def small_workload(small_meta) -> Workload:
    q1 = Query.build(small_meta, ["a2", "a3"], {"a1": (0, 1999)}, label="Q1")
    q2 = Query.build(small_meta, ["a2", "a3"], {"a4": (5000, 9999)}, label="Q2")
    q3 = Query.build(small_meta, ["a5"], {"a6": (4000, 4999)}, label="Q3")
    return Workload(small_meta, [q1, q2, q3])


@pytest.fixture()
def cost_model(small_meta) -> CostModel:
    return CostModel(small_meta, IOModel.from_throughput(75.0, 0.001))


@pytest.fixture()
def ctx() -> BuildContext:
    """A build context sized for the tiny test tables."""
    return BuildContext(file_segment_bytes=16 * 1024, schism_sample_size=200)


@pytest.fixture()
def paper_table() -> TableMeta:
    """The 6x6 example table of Figure 1 / Table 2."""
    schema = TableSchema.uniform([f"a{i}" for i in range(1, 7)])
    bounds = {f"a{i}": (i * 10 + 1, i * 10 + 6) for i in range(1, 7)}
    return TableMeta.from_bounds("T", schema, 6, bounds)


@pytest.fixture()
def paper_queries(paper_table):
    """Table 2's three example queries."""
    q1 = Query.build(paper_table, ["a2", "a3"], {"a1": (11, 13)}, label="Q1")
    q2 = Query.build(paper_table, ["a2", "a3"], {"a4": (44, 46)}, label="Q2")
    q3 = Query.build(paper_table, ["a5"], {"a6": (64, 65)}, label="Q3")
    return [q1, q2, q3]
