"""Unit tests for the cost model (Formulas 1-6)."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    IOModel,
    MemoryModel,
    Partition,
    Query,
    Segment,
    fit_io_model,
)
from repro.errors import CalibrationError


class TestIOModel:
    def test_linear_prediction(self):
        model = IOModel(alpha=1e-8, beta=0.01)
        assert model.io_time(1_000_000) == pytest.approx(0.02)
        assert model.io_time(0) == 0.0

    def test_from_throughput(self):
        model = IOModel.from_throughput(100.0, latency_s=0.005)
        assert model.io_time(100 * 1e6) == pytest.approx(1.005)
        assert model.throughput_mb_per_s == pytest.approx(100.0)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(CalibrationError):
            IOModel(alpha=-1.0, beta=0.0)
        with pytest.raises(CalibrationError):
            IOModel.from_throughput(0.0)


class TestFitIOModel:
    def test_recovers_exact_line(self):
        truth = IOModel(alpha=2e-9, beta=0.004)
        sizes = [1 << s for s in range(20, 26)]
        times = [truth.io_time(size) for size in sizes]
        fitted = fit_io_model(sizes, times)
        assert fitted.alpha == pytest.approx(truth.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(truth.beta, rel=1e-6)

    def test_recovers_noisy_line(self):
        rng = np.random.default_rng(0)
        truth = IOModel(alpha=1.3e-8, beta=0.01)
        sizes = [int(s) for s in np.linspace(1e6, 1e8, 50)]
        times = [truth.io_time(size) * (1 + rng.normal(0, 0.01)) for size in sizes]
        fitted = fit_io_model(sizes, times)
        assert fitted.alpha == pytest.approx(truth.alpha, rel=0.05)

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(CalibrationError):
            fit_io_model([100], [1.0])
        with pytest.raises(CalibrationError):
            fit_io_model([100, 100], [1.0, 1.1])
        with pytest.raises(CalibrationError):
            fit_io_model([100, 200], [1.0])


class TestMemoryModel:
    def test_mem_formula(self):
        model = MemoryModel(random_writes_per_s=1e6)
        assert model.mem(500_000) == pytest.approx(0.5)
        assert model.mem(-5) == 0.0

    def test_materialize(self):
        model = MemoryModel(seq_bytes_per_s=1e9)
        assert model.materialize(5e8) == pytest.approx(0.5)

    def test_rejects_non_positive_rates(self):
        with pytest.raises(CalibrationError):
            MemoryModel(random_writes_per_s=0)


class TestCostModel:
    def test_sizeof_segment_includes_tuple_ids(self, paper_table, cost_model_paper):
        segment = Segment(("a1", "a2"), 6.0, paper_table.full_range())
        # 6 tuples x (8B tid + 4B + 4B)
        assert cost_model_paper.sizeof_segment(segment) == 6 * 16

    def test_sizeof_partition_sums_segments(self, paper_table, cost_model_paper):
        seg1 = Segment(("a1",), 6.0, paper_table.full_range())
        seg2 = Segment(("a2", "a3"), 3.0, paper_table.full_range())
        partition = Partition(0, (seg1, seg2))
        expected = 6 * 12 + 3 * 16
        assert cost_model_paper.sizeof_partition(partition) == expected

    def test_cost_counts_one_read_per_accessing_query(
        self, paper_table, paper_queries, cost_model_paper
    ):
        seg_a1 = Segment(("a1",), 6.0, paper_table.full_range())
        seg_rest = Segment(("a5", "a6"), 6.0, paper_table.full_range())
        partitions = [Partition(0, (seg_a1,)), Partition(1, (seg_rest,))]
        # Q1 reads partition 0 only; Q3 reads partition 1 only; Q2 reads none.
        io0 = cost_model_paper.io(cost_model_paper.sizeof_partition(partitions[0]))
        io1 = cost_model_paper.io(cost_model_paper.sizeof_partition(partitions[1]))
        total = cost_model_paper.cost_partitions(partitions, paper_queries)
        assert total == pytest.approx(io0 + io1)

    def test_cost_segments_ignores_empty(self, paper_table, paper_queries, cost_model_paper):
        empty = Segment((), 6.0, paper_table.full_range())
        assert cost_model_paper.cost_segments([empty], paper_queries) == 0.0

    def test_survived_tuple_num_uniform_estimate(
        self, paper_table, paper_queries, cost_model_paper
    ):
        q1 = paper_queries[0]  # a1 in [11, 13]: half of [11, 16]
        segment = Segment(("a2",), 6.0, paper_table.full_range())
        assert cost_model_paper.survived_tuple_num(segment, q1) == pytest.approx(3.0)

    def test_survived_zero_when_not_accessed(
        self, paper_table, paper_queries, cost_model_paper
    ):
        q1 = paper_queries[0]
        segment = Segment(("a5",), 6.0, paper_table.full_range())  # Q1 never touches a5
        assert cost_model_paper.survived_tuple_num(segment, q1) == 0.0

    def test_cost_recons_uses_memory_model(self, paper_table, paper_queries):
        model = CostModel(
            paper_table,
            IOModel(0.0, 0.0),
            memory_model=MemoryModel(random_writes_per_s=1.0),
        )
        segment = Segment(("a2",), 6.0, paper_table.full_range())
        partitions = [Partition(0, (segment,))]
        q1 = paper_queries[0]
        # 3 surviving tuples at 1 write/sec -> 3 seconds.
        assert model.cost_recons(partitions, [q1]) == pytest.approx(3.0)

    def test_cost_column_formula_6(self, paper_table):
        model = CostModel(
            paper_table, IOModel(alpha=0.0, beta=1.0), page_size=8
        )
        query = Query.build(paper_table, ["a2"], {"a1": (11, 13)})
        # two attributes accessed, each 6 x 4 = 24 bytes = 3 pages of 8B,
        # at beta=1s per page -> 6 seconds.
        assert model.cost_column([query]) == pytest.approx(6.0)


@pytest.fixture()
def cost_model_paper(paper_table):
    return CostModel(paper_table, IOModel.from_throughput(75.0, 0.01))
