"""The paper's worked example: Table 2's queries on Figure 1's table.

These tests pin down the semantics the paper describes in Sections 2 and 4
using the exact 6x6 example: which cells each query touches, what the query
range boxes look like, and that an irregular plan on a scaled-up version of
the example answers Q1-Q3 exactly like a row store."""

import numpy as np
import pytest

from repro.core import Query, Segment, Workload, access
from repro.core.ranges import Interval
from repro.layouts import BuildContext, IrregularLayout, RowLayout
from repro.storage import ColumnTable


class TestTable2Queries:
    def test_q1_range_matches_paper(self, paper_table):
        """The paper spells out Q1.range explicitly in Section 4.1."""
        q1 = Query.build(paper_table, ["a2", "a3"], {"a1": (11, 1000)})
        expected = {
            "a1": (11, 16),  # clipped to the table range, per Algorithm 1
            "a2": (21, 26),
            "a3": (31, 36),
            "a4": (41, 46),
            "a5": (51, 56),
            "a6": (61, 66),
        }
        for name, (lo, hi) in expected.items():
            assert q1.ranges[name] == Interval(lo, hi)

    def test_q1_sigma_pi(self, paper_table):
        q1 = Query.build(paper_table, ["a2", "a3"], {"a1": (11, 1000)})
        assert q1.sigma_attributes == {"a1"}
        assert q1.pi_attributes == {"a2", "a3"}

    def test_access_of_example_segments(self, paper_table, paper_queries):
        """The top-left irregular partition of Figure 1e stores a1 for
        t3, t4 and a2, a3 for t4; Q1 must access it, Q3 must not."""
        q1, _q2, q3 = paper_queries
        a1_segment = Segment(("a1",), 2.0, paper_table.full_range())
        assert access(a1_segment, q1)
        assert not access(a1_segment, q3)


class TestScaledExample:
    """The 6-tuple table scaled to 6000 tuples so partitioning is worthwhile."""

    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(0)
        from repro.core import TableSchema

        schema = TableSchema.uniform([f"a{i}" for i in range(1, 7)])
        columns = {
            f"a{i}": rng.integers(i * 10 + 1, i * 10 + 7, 6000).astype(np.int32)
            for i in range(1, 7)
        }
        return ColumnTable.build("T", schema, columns)

    def test_irregular_answers_match_row_store(self, table):
        q1 = Query.build(table.meta, ["a2", "a3"], {"a1": (11, 13)}, label="Q1")
        q2 = Query.build(table.meta, ["a2", "a3"], {"a4": (44, 46)}, label="Q2")
        q3 = Query.build(table.meta, ["a5"], {"a6": (64, 65)}, label="Q3")
        train = Workload(table.meta, [q1, q2, q3])
        ctx = BuildContext(file_segment_bytes=8 * 1024)
        irregular = IrregularLayout(selection_enabled=False).build(table, train, ctx)
        row = RowLayout().build(table, train, ctx)
        for query in (q1, q2, q3):
            expected, _stats = row.execute(query)
            actual, _stats = irregular.execute(query)
            assert actual.equals(expected)

    def test_irregular_reads_fewer_bytes_than_row(self, table):
        from repro.core import IOModel
        from repro.storage import DeviceProfile

        q1 = Query.build(table.meta, ["a2", "a3"], {"a1": (11, 13)}, label="Q1")
        train = Workload(table.meta, [q1])
        # Byte-dominated device: at this tiny scale an unscaled per-request
        # latency would (correctly) make the tuner refuse to split at all.
        ctx = BuildContext(
            device_profile=DeviceProfile("flat", IOModel(alpha=1e-8, beta=0.0)),
            file_segment_bytes=2 * 1024,
        )
        irregular = IrregularLayout(selection_enabled=False).build(table, train, ctx)
        row = RowLayout().build(table, train, ctx)
        _r, row_stats = row.execute(q1)
        _r, irregular_stats = irregular.execute(q1)
        assert irregular_stats.bytes_read < row_stats.bytes_read
