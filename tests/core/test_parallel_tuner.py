"""The process-parallel partitioning phase must replicate the serial plan."""

import pytest

from repro.core import CostModel, IOModel, JigsawPartitioner, PartitionerConfig
from repro.core.parallel_tuner import ParallelJigsawPartitioner
from repro.workloads.hap import hap_workload, make_hap_table


def canonical(plan):
    """Order-insensitive structural fingerprint of a plan."""
    return sorted(
        tuple(
            sorted(
                (
                    segment.attributes,
                    tuple(
                        sorted(
                            (a, segment.ranges[a].lo, segment.ranges[a].hi)
                            for a in segment.tight
                        )
                    ),
                )
                for segment in partition.segments
            )
        )
        for partition in plan
    )


@pytest.fixture(scope="module")
def tuning_setup():
    table = make_hap_table(8_000, 32, seed=3)
    workload, _t = hap_workload(table.meta, 0.1, 6, 2, 30, seed=4)
    cost_model = CostModel(table.meta, IOModel.from_throughput(75.0, 0.0001))
    config = PartitionerConfig(
        min_size=16 * 1024, max_size=128 * 1024, selection_enabled=False
    )
    return table, workload, cost_model, config


class TestParallelTuner:
    def test_identical_plan_to_serial(self, tuning_setup):
        table, workload, cost_model, config = tuning_setup
        serial = JigsawPartitioner(cost_model, config).partition(table.meta, workload)
        parallel = ParallelJigsawPartitioner(cost_model, config, n_workers=3).partition(
            table.meta, workload
        )
        assert canonical(parallel) == canonical(serial)

    def test_single_worker_uses_serial_path(self, tuning_setup):
        table, workload, cost_model, config = tuning_setup
        tuner = ParallelJigsawPartitioner(cost_model, config, n_workers=1)
        plan = tuner.partition(table.meta, workload)
        plan.validate_disjoint()
        plan.validate_attribute_cover()

    def test_stats_populated(self, tuning_setup):
        table, workload, cost_model, config = tuning_setup
        tuner = ParallelJigsawPartitioner(cost_model, config, n_workers=2)
        tuner.partition(table.meta, workload)
        assert tuner.stats.n_split_evaluations > 0
        assert tuner.stats.n_candidates_costed > 0
        assert tuner.stats.n_partitions > 0

    def test_deterministic_across_runs(self, tuning_setup):
        table, workload, cost_model, config = tuning_setup
        first = ParallelJigsawPartitioner(cost_model, config, n_workers=2).partition(
            table.meta, workload
        )
        second = ParallelJigsawPartitioner(cost_model, config, n_workers=2).partition(
            table.meta, workload
        )
        assert canonical(first) == canonical(second)
