"""Unit tests for partitions, plans and the Formula-4 validity checks."""

import pytest

from repro.core import Partition, PartitioningPlan, Segment, segments_disjoint
from repro.core.partitioner import make_columnar_plan
from repro.errors import InvalidPartitioningError


def seg(paper_table, attrs, tight=frozenset(), box=None):
    return Segment(tuple(attrs), 6.0, box or paper_table.full_range(), tight=frozenset(tight))


class TestSegmentsDisjoint:
    def test_disjoint_attribute_sets(self, paper_table):
        assert segments_disjoint(seg(paper_table, ["a1"]), seg(paper_table, ["a2"]))

    def test_shared_attributes_overlapping_boxes(self, paper_table):
        assert not segments_disjoint(seg(paper_table, ["a1"]), seg(paper_table, ["a1", "a2"]))

    def test_shared_attributes_disjoint_boxes(self, paper_table):
        lower_box = paper_table.full_range().replace(
            "a1", paper_table.interval("a1").split(13, 1.0)[0]
        )
        upper_box = paper_table.full_range().replace(
            "a1", paper_table.interval("a1").split(13, 1.0)[1]
        )
        left = Segment(("a2",), 3.0, lower_box, tight=frozenset({"a1"}))
        right = Segment(("a2",), 3.0, upper_box, tight=frozenset({"a1"}))
        assert segments_disjoint(left, right)


class TestPartition:
    def test_needs_segments(self):
        with pytest.raises(InvalidPartitioningError):
            Partition(0, ())

    def test_attribute_union(self, paper_table):
        partition = Partition(0, (seg(paper_table, ["a1"]), seg(paper_table, ["a2", "a3"])))
        assert partition.attribute_set == {"a1", "a2", "a3"}

    def test_rectangular_detection(self, paper_table):
        rect = Partition(0, (seg(paper_table, ["a1"]), seg(paper_table, ["a1"])))
        irregular = Partition(1, (seg(paper_table, ["a1"]), seg(paper_table, ["a1", "a2"])))
        assert rect.is_rectangular()
        assert not irregular.is_rectangular()

    def test_accessed_by_any_segment(self, paper_table, paper_queries):
        q3 = paper_queries[2]  # predicate a6, projects a5
        partition = Partition(0, (seg(paper_table, ["a2"]), seg(paper_table, ["a6"])))
        assert partition.accessed_by(q3)
        unrelated = Partition(1, (seg(paper_table, ["a2"]),))
        assert not unrelated.accessed_by(q3)


class TestPartitioningPlan:
    def test_columnar_plan_shape(self, paper_table):
        plan = make_columnar_plan(paper_table)
        assert plan.kind == "columnar"
        assert len(plan) == 6
        plan.validate_disjoint()
        plan.validate_attribute_cover()

    def test_validate_disjoint_catches_overlap(self, paper_table):
        overlapping = PartitioningPlan.from_segment_groups(
            paper_table,
            [[seg(paper_table, ["a1"])], [seg(paper_table, ["a1"])]],
        )
        with pytest.raises(InvalidPartitioningError):
            overlapping.validate_disjoint()

    def test_validate_cover_catches_missing_attribute(self, paper_table):
        partial = PartitioningPlan.from_segment_groups(
            paper_table, [[seg(paper_table, ["a1"])]]
        )
        with pytest.raises(InvalidPartitioningError):
            partial.validate_attribute_cover()

    def test_from_segment_groups_skips_empty_groups(self, paper_table):
        plan = PartitioningPlan.from_segment_groups(
            paper_table, [[seg(paper_table, ["a1"])], []]
        )
        assert len(plan) == 1

    def test_n_irregular_partitions(self, paper_table):
        plan = PartitioningPlan.from_segment_groups(
            paper_table,
            [
                [seg(paper_table, ["a1"]), seg(paper_table, ["a2", "a3"])],
                [seg(paper_table, ["a4"])],
            ],
        )
        assert plan.n_irregular_partitions() == 1
