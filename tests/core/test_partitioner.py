"""Unit tests for the Jigsaw partitioner (Algorithms 2-4)."""

import pytest

from repro.core import (
    CostModel,
    IOModel,
    JigsawPartitioner,
    MemoryModel,
    PartitionerConfig,
    Query,
    Segment,
    TableMeta,
    TableSchema,
    Workload,
    partition_segment,
)
from repro.errors import InvalidPartitioningError


def big_table(n=10_000_000, n_attrs=6) -> TableMeta:
    schema = TableSchema.uniform([f"a{i}" for i in range(1, n_attrs + 1)])
    bounds = {f"a{i}": (0, 99_999) for i in range(1, n_attrs + 1)}
    return TableMeta.from_bounds("T", schema, n, bounds)


def byte_dominated_model(table) -> CostModel:
    """No fixed I/O cost: any redundancy reduction is a benefit."""
    return CostModel(table, IOModel(alpha=1e-8, beta=0.0))


class TestPartitionSegment:
    def test_vertical_and_horizontal_split(self):
        table = big_table()
        q = Query.build(table, ["a2", "a3"], {"a1": (0, 9_999)})
        root = Segment(table.attribute_names, float(table.n_tuples),
                       table.full_range(), queries=frozenset([q]))
        children, benefit = partition_segment(root, byte_dominated_model(table))
        assert benefit > 0
        assert len(children) >= 2
        attr_sets = [set(c.attributes) for c in children]
        assert {"a1"} in attr_sets  # the sigma segment
        # Every attribute is still stored somewhere (horizontally split
        # children share attribute sets with disjoint ranges).
        union = set().union(*attr_sets)
        assert union == set(table.attribute_names)

    def test_children_carry_reassigned_queries(self):
        table = big_table()
        q = Query.build(table, ["a2", "a3"], {"a1": (0, 9_999)})
        root = Segment(table.attribute_names, float(table.n_tuples),
                       table.full_range(), queries=frozenset([q]))
        children, _benefit = partition_segment(root, byte_dominated_model(table))
        sigma = next(c for c in children if set(c.attributes) == {"a1"})
        assert q in sigma.queries
        rest = next(c for c in children if "a5" in c.attributes)
        assert q not in rest.queries

    def test_no_queries_returns_zero_benefit(self):
        table = big_table()
        root = Segment(table.attribute_names, float(table.n_tuples), table.full_range())
        children, benefit = partition_segment(root, byte_dominated_model(table))
        assert benefit == 0.0
        assert children == [root]

    def test_beta_dominated_model_freezes_small_tables(self):
        """With high per-request cost and a tiny table, splitting only adds
        I/O requests, so the benefit is non-positive."""
        table = big_table(n=6)
        q = Query.build(table, ["a2", "a3"], {"a1": (0, 9_999)})
        root = Segment(table.attribute_names, 6.0, table.full_range(),
                       queries=frozenset([q]))
        model = CostModel(table, IOModel(alpha=1e-8, beta=1.0))
        _children, benefit = partition_segment(root, model)
        assert benefit <= 0


class TestJigsawPartitioner:
    def make_workload(self, table):
        q1 = Query.build(table, ["a2", "a3"], {"a1": (0, 9_999)}, label="Q1")
        q2 = Query.build(table, ["a2", "a3"], {"a4": (50_000, 99_999)}, label="Q2")
        q3 = Query.build(table, ["a5"], {"a6": (40_000, 49_999)}, label="Q3")
        return Workload(table, [q1, q2, q3])

    def test_plan_is_valid(self):
        table = big_table()
        workload = self.make_workload(table)
        tuner = JigsawPartitioner(
            CostModel(table, IOModel.from_throughput(75.0, 0.01)),
            PartitionerConfig(selection_enabled=False),
        )
        plan = tuner.partition(table, workload)
        plan.validate_disjoint()
        plan.validate_attribute_cover()
        assert plan.kind == "irregular"
        assert len(plan) == tuner.stats.n_partitions

    def test_resizing_respects_max_size(self):
        table = big_table()
        workload = self.make_workload(table)
        config = PartitionerConfig(
            min_size=4 * 1024 * 1024, max_size=32 * 1024 * 1024, selection_enabled=False
        )
        model = CostModel(table, IOModel.from_throughput(75.0, 0.01))
        tuner = JigsawPartitioner(model, config)
        plan = tuner.partition(table, workload)
        for partition in plan:
            for segment in partition.segments:
                # individual segments were split below MAX_SIZE
                assert model.sizeof_segment(segment) <= config.max_size * 1.001

    def test_merging_can_produce_irregular_partitions(self):
        """Small same-access-pattern segments with different schemas must be
        merged into one partition, producing a non-rectangular shape."""
        table = big_table(n=200_000, n_attrs=8)
        q1 = Query.build(table, ["a2", "a3", "a5"], {"a1": (0, 4_999)}, label="Q1")
        q2 = Query.build(table, ["a2", "a3", "a5"], {"a4": (0, 4_999)}, label="Q2")
        workload = Workload(table, [q1, q2])
        config = PartitionerConfig(
            min_size=512 * 1024, max_size=4 * 1024 * 1024, selection_enabled=False
        )
        tuner = JigsawPartitioner(
            CostModel(table, IOModel.from_throughput(75.0, 0.001)), config
        )
        plan = tuner.partition(table, workload)
        plan.validate_disjoint()
        plan.validate_attribute_cover()
        assert tuner.stats.n_merges > 0

    def test_selection_phase_falls_back_to_columnar(self):
        """A tiny table with huge per-request overhead makes the columnar
        layout cheaper, so Algorithm 2 line 26 must fire."""
        table = big_table(n=100)
        workload = self.make_workload(table)
        tuner = JigsawPartitioner(
            CostModel(table, IOModel(alpha=1e-8, beta=10.0), page_size=1 << 20),
            PartitionerConfig(selection_enabled=True),
        )
        plan = tuner.partition(table, workload)
        assert plan.kind == "columnar"
        assert tuner.stats.chose_columnar

    def test_selection_disabled_keeps_irregular(self):
        table = big_table(n=100)
        workload = self.make_workload(table)
        tuner = JigsawPartitioner(
            CostModel(table, IOModel(alpha=1e-8, beta=10.0), page_size=1 << 20),
            PartitionerConfig(selection_enabled=False),
        )
        plan = tuner.partition(table, workload)
        assert plan.kind == "irregular"

    def test_max_segments_cap(self):
        table = big_table()
        workload = self.make_workload(table)
        config = PartitionerConfig(
            min_size=1, max_size=1 << 40, max_segments=4, selection_enabled=False
        )
        tuner = JigsawPartitioner(byte_dominated_model(table), config)
        plan = tuner.partition(table, workload)
        plan.validate_attribute_cover()

    def test_config_validation(self):
        with pytest.raises(InvalidPartitioningError):
            PartitionerConfig(min_size=0)
        with pytest.raises(InvalidPartitioningError):
            PartitionerConfig(min_size=10, max_size=5)

    def test_stats_costs_populated(self):
        table = big_table()
        workload = self.make_workload(table)
        tuner = JigsawPartitioner(
            CostModel(table, IOModel.from_throughput(75.0, 0.01)),
            PartitionerConfig(selection_enabled=True),
        )
        tuner.partition(table, workload)
        stats = tuner.stats
        assert stats.irregular_cost > 0
        assert stats.columnar_cost > 0
        assert stats.elapsed_s > 0
        assert stats.n_split_evaluations > 0
