"""Unit tests for query metadata (Algorithm 1's Query struct)."""

import pytest

from repro.core import Query, Workload
from repro.core.ranges import Interval
from repro.errors import InvalidQueryError


class TestQueryBuild:
    def test_sigma_and_pi_sets(self, paper_table):
        query = Query.build(paper_table, ["a2", "a3"], {"a1": (11, 13)})
        assert query.sigma_attributes == {"a1"}
        assert query.pi_attributes == {"a2", "a3"}
        assert query.accessed_attributes == {"a1", "a2", "a3"}

    def test_range_box_covers_every_attribute(self, paper_table):
        """The paper's example: Q1.range has predicate bounds on a1 and table
        bounds everywhere else."""
        query = Query.build(paper_table, ["a2", "a3"], {"a1": (11, 13)})
        assert query.ranges["a1"] == Interval(11, 13)
        for i in range(2, 7):
            assert query.ranges[f"a{i}"] == paper_table.interval(f"a{i}")

    def test_predicates_clipped_to_table_range(self, paper_table):
        query = Query.build(paper_table, ["a2"], {"a1": (0, 1000)})
        assert query.ranges["a1"] == paper_table.interval("a1")

    def test_disjoint_predicate_rejected(self, paper_table):
        with pytest.raises(InvalidQueryError):
            Query.build(paper_table, ["a2"], {"a1": (1000, 2000)})

    def test_unknown_attribute_rejected(self, paper_table):
        with pytest.raises(Exception):
            Query.build(paper_table, ["zz"])

    def test_empty_projection_rejected(self, paper_table):
        with pytest.raises(InvalidQueryError):
            Query.build(paper_table, [])

    def test_no_where_clause(self, paper_table):
        query = Query.build(paper_table, ["a1"])
        assert not query.sigma_attributes
        assert query.ranges["a1"] == paper_table.interval("a1")

    def test_duplicate_projection_deduplicated(self, paper_table):
        query = Query.build(paper_table, ["a2", "a2", "a3"])
        assert query.select == ("a2", "a3")

    def test_predicate_interval_accessor(self, paper_table):
        query = Query.build(paper_table, ["a2"], {"a1": (11, 13)})
        assert query.predicate_interval("a1") == Interval(11, 13)
        with pytest.raises(InvalidQueryError):
            query.predicate_interval("a2")

    def test_queries_hash_by_identity(self, paper_table):
        a = Query.build(paper_table, ["a2"], {"a1": (11, 13)})
        b = Query.build(paper_table, ["a2"], {"a1": (11, 13)})
        assert a != b and len({a, b}) == 2


class TestWorkload:
    def test_accessed_attributes_union(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        assert workload.accessed_attributes() == {"a1", "a2", "a3", "a4", "a5", "a6"}

    def test_predicate_frequency(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries + [paper_queries[0]])
        frequency = workload.predicate_attribute_frequency()
        assert frequency["a1"] == 2 and frequency["a4"] == 1 and frequency["a6"] == 1

    def test_indexing_and_len(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        assert len(workload) == 3
        assert workload[0].label == "Q1"
        assert [q.label for q in workload] == ["Q1", "Q2", "Q3"]


class TestWorkloadWindowMerge:
    def test_window_keeps_most_recent(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        window = workload.window(2)
        assert [q.label for q in window] == ["Q2", "Q3"]
        assert window.table is paper_table

    def test_window_larger_than_workload(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        assert [q.label for q in workload.window(10)] == ["Q1", "Q2", "Q3"]

    def test_window_zero_or_negative_is_empty(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        assert len(workload.window(0)) == 0
        assert len(workload.window(-3)) == 0

    def test_merge_concatenates_in_order(self, paper_table, paper_queries):
        first = Workload(paper_table, paper_queries[:1])
        second = Workload(paper_table, paper_queries[1:])
        merged = first.merge(second)
        assert [q.label for q in merged] == ["Q1", "Q2", "Q3"]
        assert len(first) == 1 and len(second) == 2  # inputs untouched

    def test_merge_empty_sides(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        empty = Workload(paper_table, [])
        assert [q.label for q in empty.merge(workload)] == ["Q1", "Q2", "Q3"]
        assert [q.label for q in workload.merge(empty)] == ["Q1", "Q2", "Q3"]

    def test_merge_rejects_different_tables(self, paper_table, paper_queries):
        from repro.core import TableMeta, TableSchema

        other_meta = TableMeta.from_bounds(
            "U", TableSchema.uniform(["b1"]), 10, {"b1": (0, 9)}
        )
        other = Workload(other_meta, [Query.build(other_meta, ["b1"])])
        with pytest.raises(InvalidQueryError):
            Workload(paper_table, paper_queries).merge(other)

    def test_window_then_merge_roundtrip(self, paper_table, paper_queries):
        workload = Workload(paper_table, paper_queries)
        rebuilt = workload.window(1).merge(
            Workload(paper_table, paper_queries[:2])
        )
        assert [q.label for q in rebuilt] == ["Q3", "Q1", "Q2"]
