"""Unit tests for the interval / range-box algebra."""

import math

import pytest

from repro.core.ranges import Interval, RangeMap


class TestInterval:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Interval(5.0, 4.0)
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_single_point_interval_is_valid(self):
        interval = Interval(3.0, 3.0)
        assert interval.contains(3.0)
        assert interval.width(unit=1.0) == 1.0
        assert interval.width(unit=0.0) == 0.0

    def test_intersects_is_symmetric_and_closed(self):
        a = Interval(0, 10)
        b = Interval(10, 20)  # touching endpoints count (closed intervals)
        c = Interval(11, 20)
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c) and not c.intersects(a)

    def test_intersect_returns_overlap(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 4).intersect(Interval(5, 15)) is None

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(2, 8))
        assert not Interval(0, 10).covers(Interval(2, 12))

    def test_overlap_fraction_uniform_integer(self):
        # [0, 99] overlapping [0, 49] with integer unit -> exactly half.
        assert Interval(0, 99).overlap_fraction(Interval(0, 49), unit=1.0) == pytest.approx(0.5)

    def test_overlap_fraction_disjoint_is_zero(self):
        assert Interval(0, 10).overlap_fraction(Interval(20, 30)) == 0.0

    def test_overlap_fraction_degenerate_float_interval(self):
        # A zero-width float interval fully inside the other counts as 1.
        assert Interval(5.0, 5.0).overlap_fraction(Interval(0, 10)) == 1.0

    def test_split_integer_leaves_no_gap_or_overlap(self):
        lower, upper = Interval(0, 99).split(49, unit=1.0)
        assert lower == Interval(0, 49)
        assert upper == Interval(50, 99)

    def test_split_integer_floors_fractional_cut(self):
        lower, upper = Interval(0, 99).split(49.7, unit=1.0)
        assert lower.hi == 49.0 and upper.lo == 50.0

    def test_split_float_uses_nextafter(self):
        lower, upper = Interval(0.0, 1.0).split(0.5, unit=0.0)
        assert lower.hi == 0.5
        assert upper.lo == math.nextafter(0.5, math.inf)

    def test_split_rejects_out_of_range_cut(self):
        with pytest.raises(ValueError):
            Interval(0, 10).split(10, unit=1.0)  # upper child would be empty
        with pytest.raises(ValueError):
            Interval(0, 10).split(-1, unit=1.0)


class TestRangeMap:
    def test_from_bounds_roundtrip(self):
        box = RangeMap.from_bounds({"a": (0, 10), "b": (5, 6)})
        assert box["a"] == Interval(0, 10)
        assert set(box.attributes) == {"a", "b"}
        assert "a" in box and "c" not in box

    def test_intersects_requires_every_shared_attribute(self):
        box = RangeMap.from_bounds({"a": (0, 10), "b": (0, 10)})
        other = RangeMap.from_bounds({"a": (5, 15), "b": (20, 30)})
        assert not box.intersects(other)
        overlapping = RangeMap.from_bounds({"a": (5, 15), "b": (0, 1)})
        assert box.intersects(overlapping)

    def test_intersects_ignores_unshared_attributes(self):
        box = RangeMap.from_bounds({"a": (0, 10)})
        other = RangeMap.from_bounds({"b": (100, 200)})
        assert box.intersects(other)

    def test_replace_is_persistent(self):
        box = RangeMap.from_bounds({"a": (0, 10)})
        updated = box.replace("a", Interval(0, 5))
        assert box["a"].hi == 10 and updated["a"].hi == 5
        with pytest.raises(KeyError):
            box.replace("zz", Interval(0, 1))

    def test_overlap_fraction_is_product_over_attributes(self):
        box = RangeMap.from_bounds({"a": (0, 99), "b": (0, 99)})
        query = RangeMap.from_bounds({"a": (0, 49), "b": (0, 49)})
        units = {"a": 1.0, "b": 1.0}
        assert box.overlap_fraction(query, units) == pytest.approx(0.25)

    def test_equality_and_hash(self):
        left = RangeMap.from_bounds({"a": (0, 1)})
        right = RangeMap.from_bounds({"a": (0, 1)})
        assert left == right and hash(left) == hash(right)
        assert left != RangeMap.from_bounds({"a": (0, 2)})
