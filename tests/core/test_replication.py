"""Tests for the limited-replication extension (paper future work)."""

import numpy as np
import pytest

from repro.core import (
    CostModel,
    IOModel,
    ReplicationAdvisor,
    ReplicationConfig,
)
from repro.bench.environments import BALOS, scaled_context
from repro.bench.runner import run_workload
from repro.errors import InvalidPartitioningError
from repro.layouts import IrregularLayout, ReplicatedIrregularLayout, RowLayout
from repro.workloads.hap import hap_workload, make_hap_table


@pytest.fixture(scope="module")
def favorable_setup():
    """Single template, predicate attribute NOT projected: the regime
    replication targets (filter columns are pure I/O overhead)."""
    table = make_hap_table(16_000, 48, seed=21)
    train, templates = hap_workload(
        table.meta, 0.05, 6, 1, 40, seed=22, predicate_projected=False
    )
    eval_wl, _t = hap_workload(
        table.meta, 0.05, 6, 1, 3, seed=23, templates=templates
    )
    ctx, _scale = scaled_context(BALOS, table.sizeof(), seed=24)
    return table, train, eval_wl, ctx


class TestConfig:
    def test_validation(self):
        with pytest.raises(InvalidPartitioningError):
            ReplicationConfig(budget_fraction=1.5)
        with pytest.raises(InvalidPartitioningError):
            ReplicationConfig(local_cost_safety=0.5)


class TestAdvisor:
    def test_localizes_favorable_workload(self, favorable_setup):
        table, train, _eval_wl, ctx = favorable_setup
        layout = ReplicatedIrregularLayout().build(table, train, ctx)
        report = layout.build_info["replication"]
        assert len(report.localized_queries) > 0
        assert report.replica_bytes > 0
        assert report.replica_bytes <= report.budget_bytes

    def test_refuses_when_predicates_are_projected(self, favorable_setup):
        """HAP's paper construction (predicate among the projected attrs)
        leaves nothing to localize profitably: the predicate partitions must
        be read anyway for their projected cells."""
        table, _train, _eval_wl, ctx = favorable_setup
        train, _t = hap_workload(
            table.meta, 0.05, 6, 2, 40, seed=31, predicate_projected=True
        )
        layout = ReplicatedIrregularLayout().build(table, train, ctx)
        report = layout.build_info["replication"]
        assert report.replica_bytes < table.sizeof() * 0.05

    def test_budget_is_respected(self, favorable_setup):
        table, train, _eval_wl, ctx = favorable_setup
        tight = ReplicationConfig(budget_fraction=0.001)
        layout = ReplicatedIrregularLayout(replication=tight).build(table, train, ctx)
        report = layout.build_info["replication"]
        assert report.replica_bytes <= int(0.001 * table.sizeof())


class TestExecution:
    def test_results_match_row_store(self, favorable_setup):
        table, train, eval_wl, ctx = favorable_setup
        row = RowLayout().build(table, train, ctx)
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        for query in eval_wl:
            expected, _s = row.execute(query)
            actual, _s = replicated.execute(query)
            assert actual.equals(expected), query.label

    def test_local_path_beats_standard(self, favorable_setup):
        table, train, eval_wl, ctx = favorable_setup
        irregular = IrregularLayout().build(table, train, ctx)
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        base = run_workload(irregular, eval_wl)
        local = run_workload(replicated, eval_wl)
        assert local.total.bytes_read < base.total.bytes_read
        assert local.total.simulated_time_s < base.total.simulated_time_s

    def test_local_path_skips_reconstruction(self, favorable_setup):
        table, train, eval_wl, ctx = favorable_setup
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        run = run_workload(replicated, eval_wl)
        assert run.total.hash_inserts == 0

    def test_unlocalized_query_falls_back(self, favorable_setup):
        """A query without predicates cannot be localized; the executor must
        transparently fall back to the standard engine."""
        from repro.core import Query

        table, train, _eval_wl, ctx = favorable_setup
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        query = Query.build(table.meta, ["a001"])
        assert replicated.executor.local_plan(query) is None
        result, _stats = replicated.execute(query)
        assert result.n_tuples == table.n_tuples

    def test_replicas_survive_serialization(self, favorable_setup):
        """Replica segments roundtrip through the partition file format."""
        table, train, _eval_wl, ctx = favorable_setup
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        report = replicated.build_info["replication"]
        assert report.replicas, "setup should have replicated something"
        pid = next(iter(report.replicas))
        partition, _io = replicated.manager.load(pid)
        replica_segments = [s for s in partition.segments if s.replica]
        assert replica_segments
        for segment in replica_segments:
            for name in segment.attributes:
                expected = table.column(name)[segment.tuple_ids]
                assert np.array_equal(segment.columns[name], expected)

    def test_primary_indexes_exclude_replicas(self, favorable_setup):
        table, train, _eval_wl, ctx = favorable_setup
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        report = replicated.build_info["replication"]
        pid = next(iter(report.replicas))
        for attribute in report.replicas[pid]:
            assert pid not in replicated.manager.partitions_for_attribute(attribute)
            assert pid in replicated.manager.replica_partitions_for_attribute(attribute)

    def test_cells_stored_once_excluding_replicas(self, favorable_setup):
        table, train, _eval_wl, ctx = favorable_setup
        replicated = ReplicatedIrregularLayout().build(table, train, ctx)
        cells = 0
        for pid in replicated.manager.pids():
            info = replicated.manager.info(pid)
            cells += sum(
                len(attrs) * len(tids)
                for attrs, tids, is_replica in zip(
                    info.segment_attrs, info.segment_tids, info.segment_replicas
                )
                if not is_replica
            )
        assert cells == table.n_tuples * len(table.schema)
