"""Unit tests for schemas and table metadata."""

import pytest

from repro.core import AttributeSpec, TableMeta, TableSchema
from repro.errors import SchemaError


class TestAttributeSpec:
    def test_defaults(self):
        spec = AttributeSpec("a")
        assert spec.byte_width == 4 and spec.np_dtype == "int32" and spec.integer

    def test_rejects_empty_name_and_bad_width(self):
        with pytest.raises(SchemaError):
            AttributeSpec("")
        with pytest.raises(SchemaError):
            AttributeSpec("a", byte_width=0)

    def test_rejects_width_smaller_than_dtype(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", byte_width=2, np_dtype="int64")

    def test_padded_width_is_allowed(self):
        spec = AttributeSpec("comment", byte_width=117, np_dtype="int32")
        assert spec.byte_width == 117

    def test_unit_reflects_integrality(self):
        assert AttributeSpec("a").unit == 1.0
        assert AttributeSpec("x", 8, "float64", integer=False).unit == 0.0


class TestTableSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([AttributeSpec("a"), AttributeSpec("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_positions_follow_declaration_order(self):
        schema = TableSchema.uniform(["x", "y", "z"])
        assert [schema.position(n) for n in ("x", "y", "z")] == [0, 1, 2]

    def test_row_width_full_and_subset(self):
        schema = TableSchema(
            [AttributeSpec("a", 4), AttributeSpec("b", 8, "int64"), AttributeSpec("c", 117, "int32")]
        )
        assert schema.row_width() == 129
        assert schema.row_width(["a", "c"]) == 121

    def test_unknown_attribute_raises(self):
        schema = TableSchema.uniform(["a"])
        with pytest.raises(SchemaError):
            schema["nope"]
        with pytest.raises(SchemaError):
            schema.position("nope")
        with pytest.raises(SchemaError):
            schema.validate_attributes(["a", "nope"])

    def test_units_map(self):
        schema = TableSchema(
            [AttributeSpec("i", 4), AttributeSpec("f", 8, "float64", integer=False)]
        )
        assert schema.units() == {"i": 1.0, "f": 0.0}


class TestTableMeta:
    def test_requires_range_for_every_attribute(self):
        schema = TableSchema.uniform(["a", "b"])
        with pytest.raises(SchemaError):
            TableMeta.from_bounds("t", schema, 10, {"a": (0, 1)})

    def test_sizeof_uses_logical_widths(self):
        schema = TableSchema(
            [AttributeSpec("a", 4), AttributeSpec("c", 117, "int32")]
        )
        meta = TableMeta.from_bounds("t", schema, 100, {"a": (0, 1), "c": (0, 1)})
        assert meta.sizeof() == 100 * 121

    def test_negative_tuple_count_rejected(self):
        schema = TableSchema.uniform(["a"])
        with pytest.raises(SchemaError):
            TableMeta.from_bounds("t", schema, -1, {"a": (0, 1)})
