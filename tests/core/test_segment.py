"""Unit tests for segments, the access() predicate and horizontal splits."""

import pytest

from repro.core import Query, Segment, access, horizontal_split
from repro.core.segment import box_intersects, box_overlap_fraction
from repro.errors import InvalidPartitioningError


def make_segment(paper_table, attrs, n=6.0, tight=frozenset()):
    return Segment(tuple(attrs), n, paper_table.full_range(), tight=tight)


class TestSegmentBasics:
    def test_empty_detection(self, paper_table):
        assert make_segment(paper_table, []).is_empty
        # A zero *estimate* does not make a segment empty: narrow boxes can
        # still match real tuples (see Segment.is_empty).
        assert not make_segment(paper_table, ["a1"], n=0.0).is_empty
        assert not make_segment(paper_table, ["a1"], n=1.0).is_empty

    def test_negative_tuples_rejected(self, paper_table):
        with pytest.raises(InvalidPartitioningError):
            make_segment(paper_table, ["a1"], n=-1.0)

    def test_sizeof_formula_2(self, paper_table):
        segment = make_segment(paper_table, ["a1", "a2"], n=10.0)
        widths = {name: 4 for name in paper_table.attribute_names}
        assert segment.sizeof(widths, tuple_id_bytes=8) == 10 * (8 + 8)
        assert segment.sizeof(widths) == 10 * 8

    def test_restrict_attributes_keeps_schema_order(self, paper_table):
        segment = make_segment(paper_table, ["a1", "a2", "a3"])
        assert segment.restrict_attributes(["a3", "a1"]).attributes == ("a1", "a3")


class TestAccess:
    """Formula 3.2, using the paper's Q1/Q2/Q3 on example segments."""

    def test_predicate_attribute_always_accessed(self, paper_table, paper_queries):
        q1 = paper_queries[0]  # predicate on a1, projects a2, a3
        sigma_segment = make_segment(paper_table, ["a1"])
        assert access(sigma_segment, q1)

    def test_projection_needs_range_overlap(self, paper_table, paper_queries):
        q1 = paper_queries[0]  # a1 in [11, 13]
        pi_segment = Segment(
            ("a2", "a3"),
            3.0,
            paper_table.full_range().replace("a1", paper_table.interval("a1").split(13, 1.0)[1]),
            tight=frozenset({"a1"}),
        )  # covers a1 in [14, 16] only
        assert not access(pi_segment, q1)
        low_segment = Segment(
            ("a2", "a3"),
            3.0,
            paper_table.full_range().replace("a1", paper_table.interval("a1").split(13, 1.0)[0]),
            tight=frozenset({"a1"}),
        )
        assert access(low_segment, q1)

    def test_unrelated_segment_not_accessed(self, paper_table, paper_queries):
        q3 = paper_queries[2]  # predicate a6, projects a5
        segment = make_segment(paper_table, ["a2", "a3"])
        assert not access(segment, q3)

    def test_box_intersects_checks_predicate_attributes_even_untight(
        self, paper_table, paper_queries
    ):
        q1 = paper_queries[0]
        # Even with an empty tight set, the query's predicate attributes are
        # compared, so a disjoint a1 interval is detected.
        segment = Segment(
            ("a2",),
            3.0,
            paper_table.full_range().replace("a1", paper_table.interval("a1").split(13, 1.0)[1]),
            tight=frozenset(),
        )
        assert not box_intersects(segment, q1)

    def test_box_overlap_fraction(self, paper_table, paper_queries):
        q1 = paper_queries[0]  # a1 in [11, 13] of [11, 16] -> 0.5
        segment = make_segment(paper_table, ["a2"])
        units = paper_table.schema.units()
        assert box_overlap_fraction(segment, q1, units) == pytest.approx(0.5)


class TestHorizontalSplit:
    def test_split_partitions_tuples_uniformly(self, paper_table):
        segment = make_segment(paper_table, ["a1", "a2"], n=6.0)
        units = paper_table.schema.units()
        lower, upper = horizontal_split(segment, "a1", 13, units)
        assert lower.n_tuples == pytest.approx(3.0)
        assert upper.n_tuples == pytest.approx(3.0)
        assert lower.ranges["a1"].hi == 13 and upper.ranges["a1"].lo == 14

    def test_split_marks_attribute_tight(self, paper_table):
        segment = make_segment(paper_table, ["a2"], n=6.0)
        units = paper_table.schema.units()
        lower, upper = horizontal_split(segment, "a1", 13, units)
        assert lower.tight == {"a1"} == upper.tight

    def test_split_preserves_total_tuples(self, paper_table):
        segment = make_segment(paper_table, ["a1"], n=7.0)
        units = paper_table.schema.units()
        lower, upper = horizontal_split(segment, "a1", 12, units)
        assert lower.n_tuples + upper.n_tuples == pytest.approx(7.0)

    def test_children_have_empty_query_sets(self, paper_table, paper_queries):
        segment = make_segment(paper_table, ["a1"]).with_queries(paper_queries)
        units = paper_table.schema.units()
        lower, upper = horizontal_split(segment, "a1", 13, units)
        assert not lower.queries and not upper.queries
