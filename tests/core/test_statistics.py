"""Tests for histogram-based cardinality estimation."""

import numpy as np
import pytest

from repro.core import EquiWidthHistogram, TableStatistics
from repro.core.ranges import Interval
from repro.errors import CalibrationError
from repro.workloads.hap import make_hap_table


class TestHistogram:
    def test_total_matches_column(self):
        column = np.arange(1000, dtype=np.int32)
        histogram = EquiWidthHistogram.from_column(column, n_bins=16)
        assert histogram.total == 1000

    def test_mass_on_uniform_data_matches_width(self):
        rng = np.random.default_rng(0)
        column = rng.integers(0, 10_000, 100_000).astype(np.int32)
        histogram = EquiWidthHistogram.from_column(column, n_bins=50)
        mass = histogram.mass(0, 5_000)
        assert mass == pytest.approx(50_000, rel=0.03)

    def test_mass_whole_range_is_total(self):
        column = np.array([1, 5, 5, 9], dtype=np.int32)
        histogram = EquiWidthHistogram.from_column(column, n_bins=4)
        assert histogram.mass(1, 10) == pytest.approx(4.0)

    def test_mass_outside_range_is_zero(self):
        histogram = EquiWidthHistogram.from_column(np.array([10, 20]), n_bins=2)
        assert histogram.mass(30, 40) == 0.0
        assert histogram.mass(0, 5) == 0.0

    def test_skew_is_captured(self):
        """90% of values in the bottom 1% of the range: a half-range split
        must be estimated as ~90/10, not 50/50."""
        rng = np.random.default_rng(1)
        low = rng.integers(0, 100, 90_000)
        high = rng.integers(100, 10_000, 10_000)
        column = np.concatenate([low, high]).astype(np.int32)
        histogram = EquiWidthHistogram.from_column(column, n_bins=128)
        fraction = histogram.fraction(Interval(0, 4_999), Interval(0, 9_999), unit=1.0)
        true_fraction = float((column <= 4_999).mean())
        assert fraction == pytest.approx(true_fraction, abs=0.02)

    def test_single_value_column(self):
        histogram = EquiWidthHistogram.from_column(np.full(10, 7, dtype=np.int32))
        assert histogram.mass(7, 8) == 10.0
        assert histogram.mass(8, 9) == 0.0

    def test_empty_column(self):
        histogram = EquiWidthHistogram.from_column(np.empty(0, dtype=np.int32))
        assert histogram.total == 0.0
        assert histogram.mass(0, 100) == 0.0

    def test_validation(self):
        with pytest.raises(CalibrationError):
            EquiWidthHistogram(10.0, 5.0, np.array([1.0]))
        with pytest.raises(CalibrationError):
            EquiWidthHistogram(0.0, 1.0, np.empty(0))


class TestTableStatistics:
    def test_from_table(self, small_table):
        statistics = TableStatistics.from_table(small_table, n_bins=32)
        assert len(statistics) == len(small_table.schema)
        assert "a1" in statistics
        assert statistics.histogram("a1").total == small_table.n_tuples

    def test_fraction_fallback_without_histogram(self, small_table):
        statistics = TableStatistics.from_table(small_table, attributes=["a1"])
        piece, whole = Interval(0, 49), Interval(0, 99)
        # a2 has no histogram -> uniform model.
        assert statistics.fraction("a2", piece, whole, unit=1.0) == pytest.approx(0.5)

    def test_subset_of_attributes(self, small_table):
        statistics = TableStatistics.from_table(small_table, attributes=["a1", "a2"])
        assert len(statistics) == 2
        assert "a3" not in statistics


class TestTunerIntegration:
    def test_histograms_fix_skewed_size_estimates(self):
        """On Zipf data, histogram-backed splitting estimates partition sizes
        accurately where the uniform model is off by multiples."""
        import statistics as stdlib_stats

        from repro.bench.environments import BALOS, scaled_context
        from repro.layouts import IrregularLayout
        from repro.workloads.hap import hap_workload

        table = make_hap_table(12_000, 16, seed=3, distribution="zipf")
        train, _t = hap_workload(table.meta, 0.1, 4, 2, 30, seed=4)
        ctx, _s = scaled_context(BALOS, table.sizeof(), seed=5)
        errors = {}
        for flag in (False, True):
            layout = IrregularLayout(
                selection_enabled=False, use_histograms=flag
            ).build(table, train, ctx)
            estimated = {
                p.pid: sum(s.n_tuples for s in p.segments) for p in layout.plan
            }
            actual = {
                pid: sum(len(t) for t in layout.manager.info(pid).segment_tids)
                for pid in layout.manager.pids()
            }
            errors[flag] = stdlib_stats.median(
                abs(estimated[pid] - actual[pid]) / max(actual[pid], 1)
                for pid in actual
                if actual[pid] > 50
            )
        assert errors[True] < errors[False] / 5

    def test_uniform_data_unchanged_answers(self):
        """With or without histograms, query answers are identical."""
        from repro.bench.environments import BALOS, scaled_context
        from repro.layouts import IrregularLayout
        from repro.workloads.hap import hap_workload

        table = make_hap_table(6_000, 16, seed=6)
        train, templates = hap_workload(table.meta, 0.2, 4, 2, 20, seed=7)
        eval_wl, _t = hap_workload(
            table.meta, 0.2, 4, 2, 3, seed=8, templates=templates
        )
        ctx, _s = scaled_context(BALOS, table.sizeof(), seed=9)
        plain = IrregularLayout(selection_enabled=False).build(table, train, ctx)
        with_stats = IrregularLayout(
            selection_enabled=False, use_histograms=True
        ).build(table, train, ctx)
        for query in eval_wl:
            expected, _st = plain.execute(query)
            actual, _st = with_stats.execute(query)
            assert actual.equals(expected)
