"""Unit tests for result aggregation."""

import numpy as np
import pytest

from repro.engine import ResultSet, aggregate, group_aggregate, revenue
from repro.errors import InvalidQueryError


@pytest.fixture()
def result():
    return ResultSet(
        np.array([0, 1, 2, 3]),
        {
            "k": np.array([1, 2, 1, 2]),
            "x": np.array([10.0, 20.0, 30.0, 40.0]),
        },
    )


class TestAggregate:
    def test_scalar_aggregates(self, result):
        out = aggregate(result, {"x": "sum"})
        assert out["sum(x)"] == pytest.approx(100.0)
        assert aggregate(result, {"x": "max"})["max(x)"] == 40.0
        assert aggregate(result, {"x": "min"})["min(x)"] == 10.0
        assert aggregate(result, {"x": "mean"})["mean(x)"] == pytest.approx(25.0)
        assert aggregate(result, {"x": "count"})["count(x)"] == 4

    def test_unknown_function_rejected(self, result):
        with pytest.raises(InvalidQueryError):
            aggregate(result, {"x": "median"})

    def test_empty_result_semantics(self):
        empty = ResultSet(np.empty(0, np.int64), {"x": np.empty(0)})
        assert aggregate(empty, {"x": "sum"})["sum(x)"] == 0.0
        assert aggregate(empty, {"x": "count"})["count(x)"] == 0.0
        assert np.isnan(aggregate(empty, {"x": "max"})["max(x)"])


class TestGroupAggregate:
    def test_grouped_sums(self, result):
        groups = group_aggregate(result, by="k", spec={"x": "sum"})
        assert groups[1]["sum(x)"] == pytest.approx(40.0)
        assert groups[2]["sum(x)"] == pytest.approx(60.0)

    def test_groups_in_ascending_key_order(self, result):
        groups = group_aggregate(result, by="k", spec={"x": "count"})
        assert list(groups) == [1, 2]

    def test_single_group(self):
        result = ResultSet(np.array([0, 1]), {"k": np.array([7, 7]), "x": np.array([1.0, 2.0])})
        groups = group_aggregate(result, by="k", spec={"x": "mean"})
        assert list(groups) == [7]
        assert groups[7]["mean(x)"] == pytest.approx(1.5)

    def test_empty(self):
        empty = ResultSet(np.empty(0, np.int64), {"k": np.empty(0), "x": np.empty(0)})
        assert group_aggregate(empty, by="k", spec={"x": "sum"}) == {}


class TestRevenue:
    def test_tpch_revenue_formula(self):
        result = ResultSet(
            np.array([0, 1]),
            {
                "l_extendedprice": np.array([100.0, 200.0]),
                "l_discount": np.array([0.10, 0.05]),
            },
        )
        assert revenue(result) == pytest.approx(100 * 0.9 + 200 * 0.95)

    def test_empty_revenue(self):
        empty = ResultSet(
            np.empty(0, np.int64),
            {"l_extendedprice": np.empty(0), "l_discount": np.empty(0)},
        )
        assert revenue(empty) == 0.0
