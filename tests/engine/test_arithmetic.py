"""Unit tests for the in-memory arithmetic engines (Figure 10)."""

import numpy as np
import pytest

from repro.engine.arithmetic import (
    ArithmeticQuery,
    JigsawDiskEngine,
    JigsawMemEngine,
    MonetDBStyleEngine,
)
from repro.engine.predicates import RangePredicate
from repro.workloads.hap import make_hap_table


@pytest.fixture()
def hap_table():
    return make_hap_table(10_000, n_attrs=8, seed=3)


def expected_max(table, query):
    predicate = query.predicate
    mask = predicate.mask(table.column(predicate.attribute))
    if not mask.any():
        return float("-inf")
    total = np.zeros(int(mask.sum()), dtype=np.float64)
    for name in query.attributes:
        total += table.column(name)[mask]
    return float(total.max())


ENGINES = (MonetDBStyleEngine, JigsawMemEngine, JigsawDiskEngine)


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_returns_exact_maximum(self, hap_table, engine_cls):
        attrs = hap_table.schema.attribute_names[:4]
        query = ArithmeticQuery(attrs, RangePredicate(attrs[0], 0, 500_000))
        engine = engine_cls(hap_table)
        value, stats = engine.execute(query)
        assert value == expected_max(hap_table, query)
        assert stats.n_result_tuples == int(
            (hap_table.column(attrs[0]) <= 500_000).sum()
        )

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_empty_selection(self, hap_table, engine_cls):
        attrs = hap_table.schema.attribute_names[:2]
        # match nothing: a single point that (almost surely) is absent
        query = ArithmeticQuery(attrs, RangePredicate(attrs[0], -5, -1))
        value, stats = engine_cls(hap_table).execute(query)
        assert value == float("-inf")
        assert stats.n_result_tuples == 0

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_single_attribute(self, hap_table, engine_cls):
        attrs = (hap_table.schema.attribute_names[0],)
        query = ArithmeticQuery(attrs, RangePredicate(attrs[0], 0, 999_999))
        value, _stats = engine_cls(hap_table).execute(query)
        assert value == float(hap_table.column(attrs[0]).max())

    def test_all_engines_agree(self, hap_table):
        attrs = hap_table.schema.attribute_names
        query = ArithmeticQuery(attrs, RangePredicate(attrs[3], 100_000, 700_000))
        values = {cls.__name__: cls(hap_table).execute(query)[0] for cls in ENGINES}
        assert len(set(values.values())) == 1, values


class TestQueryValidation:
    def test_predicate_must_be_summed(self, hap_table):
        attrs = hap_table.schema.attribute_names
        with pytest.raises(ValueError):
            ArithmeticQuery(attrs[:2], RangePredicate(attrs[5], 0, 10))

    def test_needs_attributes(self, hap_table):
        with pytest.raises(ValueError):
            ArithmeticQuery((), RangePredicate("a", 0, 1))


class TestCostShapes:
    """The Figure-10 orderings, at full selectivity and at 1%."""

    def run_all(self, hap_table, lo, hi, k=8):
        attrs = hap_table.schema.attribute_names[:k]
        query = ArithmeticQuery(attrs, RangePredicate(attrs[0], lo, hi))
        return {
            cls.__name__: cls(hap_table).execute(query)[1] for cls in ENGINES
        }

    def test_monetdb_slowest_at_full_selectivity(self, hap_table):
        stats = self.run_all(hap_table, 0, 999_999)
        assert (
            stats["MonetDBStyleEngine"].cpu_time_s
            > stats["JigsawDiskEngine"].cpu_time_s
            > stats["JigsawMemEngine"].cpu_time_s
        )

    def test_jigsaw_disk_pays_hash_costs_at_low_selectivity(self, hap_table):
        stats = self.run_all(hap_table, 0, 9_999)  # ~1%
        assert stats["JigsawDiskEngine"].cpu_time_s > stats["JigsawMemEngine"].cpu_time_s
        assert stats["JigsawDiskEngine"].hash_inserts > 0
        assert stats["JigsawMemEngine"].hash_inserts == 0

    def test_monetdb_materializes_per_operator(self, hap_table):
        stats = self.run_all(hap_table, 0, 999_999, k=5)
        n = hap_table.n_tuples
        # selection vector + first gather + 4 intermediates of 8B each
        expected = (n + 7) // 8 + 5 * n * 8
        assert stats["MonetDBStyleEngine"].materialized_bytes == expected
