"""Graceful degradation: engines surviving unreadable partitions.

The contract under test (the acceptance bar of the fault-tolerance work):
when a partition is unreadable after every retry, an engine either returns
the exact result healthy storage would have produced — reassembling the lost
cells from replicas or overlapping primaries, with ``n_degraded_reads``
surfaced — or raises :class:`PartitionUnreadableError`.  Never a silently
wrong answer.
"""

import numpy as np
import pytest

from repro.core import Query
from repro.engine import (
    PartitionAtATimeExecutor,
    ReplicatedExecutor,
    ScanExecutor,
)
from repro.engine.parallel import ThreadedPartitionEngine
from repro.errors import PartitionUnreadableError
from repro.storage import (
    BALOS_HDD,
    FaultConfig,
    FaultInjectingBlobStore,
    MemoryBlobStore,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)

KILL = FaultConfig(transient_error_rate=1.0)


def make_manager(small_table, spec_groups, overrides=None):
    """Materialize explicit partitions behind a fault-injecting store."""
    store = FaultInjectingBlobStore(MemoryBlobStore(), overrides=overrides)
    manager = PartitionManager(
        small_table.schema, StorageDevice(BALOS_HDD), store
    )
    manager.materialize_specs(spec_groups, small_table, tid_storage=TID_CATALOG)
    return manager


def overlapping_specs(small_table):
    """Partition 0's cells also live in partition 1 (overlapping coverage);
    partition 2 holds the remaining attributes alone."""
    n = small_table.n_tuples
    all_tids = np.arange(n, dtype=np.int64)
    return [
        [SegmentSpec(("a1", "a2"), all_tids)],
        [SegmentSpec(("a1", "a2"), all_tids)],  # full overlap of partition 0
        [SegmentSpec(("a3", "a4", "a5", "a6"), all_tids)],
    ]


def disjoint_specs(small_table):
    """No partition overlaps another: nothing can substitute for a loss."""
    n = small_table.n_tuples
    lower = np.arange(n // 2, dtype=np.int64)
    upper = np.arange(n // 2, n, dtype=np.int64)
    return [
        [SegmentSpec(("a1", "a2"), lower)],
        [SegmentSpec(("a1", "a2"), upper)],
        [SegmentSpec(("a3", "a4", "a5", "a6"), np.arange(n, dtype=np.int64))],
    ]


def reference(small_table, query):
    mask = np.ones(small_table.n_tuples, dtype=bool)
    for name, interval in query.where.items():
        column = small_table.column(name)
        mask &= (column >= interval.lo) & (column <= interval.hi)
    return np.nonzero(mask)[0]


@pytest.fixture()
def query(small_table):
    return Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 4999)})


class TestPartitionAtATimeDegradation:
    def test_overlap_recovers_exact_result(self, small_table, query):
        manager = make_manager(
            small_table,
            overlapping_specs(small_table),
            overrides={"p000000.jig": KILL},
        )
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        result, stats = executor.execute(query)
        expected = reference(small_table, query)
        assert np.array_equal(result.tuple_ids, expected)
        assert np.array_equal(
            result.column("a2"), small_table.column("a2")[expected]
        )
        assert np.array_equal(
            result.column("a3"), small_table.column("a3")[expected]
        )
        assert stats.n_unreadable_partitions == 1
        assert stats.n_degraded_reads > 0
        assert stats.n_retries >= manager.retry_policy.max_attempts - 1

    def test_no_alternative_raises_never_wrong(self, small_table, query):
        manager = make_manager(
            small_table,
            disjoint_specs(small_table),
            overrides={"p000000.jig": KILL},
        )
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        with pytest.raises(PartitionUnreadableError):
            executor.execute(query)

    def test_healthy_run_reports_no_degradation(self, small_table, query):
        manager = make_manager(small_table, overlapping_specs(small_table))
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        result, stats = executor.execute(query)
        assert np.array_equal(result.tuple_ids, reference(small_table, query))
        assert stats.n_unreadable_partitions == 0
        assert stats.n_degraded_reads == 0
        assert stats.n_retries == 0

    def test_projection_phase_loss_recovers(self, small_table):
        """Kill the projection-only partition's twin coverage: a3 lives in
        two overlapping partitions; losing one must fall through to the
        other during the projection phase."""
        n = small_table.n_tuples
        all_tids = np.arange(n, dtype=np.int64)
        manager = make_manager(
            small_table,
            [
                [SegmentSpec(("a1", "a2"), all_tids)],
                [SegmentSpec(("a3",), all_tids)],
                [SegmentSpec(("a3",), all_tids)],  # overlap of partition 1
            ],
            overrides={"p000001.jig": KILL},
        )
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a3"], {"a1": (0, 4999)})
        result, stats = executor.execute(query)
        expected = reference(small_table, query)
        assert np.array_equal(result.tuple_ids, expected)
        assert np.array_equal(
            result.column("a3"), small_table.column("a3")[expected]
        )
        assert stats.n_unreadable_partitions == 1
        assert stats.n_degraded_reads > 0


class TestScanDegradation:
    def test_overlap_recovers_exact_result(self, small_table, query):
        manager = make_manager(
            small_table,
            overlapping_specs(small_table),
            overrides={"p000000.jig": KILL},
        )
        executor = ScanExecutor(manager, small_table.meta, zone_maps=False)
        result, stats = executor.execute(query)
        expected = reference(small_table, query)
        assert np.array_equal(result.tuple_ids, expected)
        assert np.array_equal(
            result.column("a3"), small_table.column("a3")[expected]
        )
        assert stats.n_unreadable_partitions == 1
        assert stats.n_degraded_reads > 0

    def test_no_alternative_raises(self, small_table, query):
        manager = make_manager(
            small_table,
            disjoint_specs(small_table),
            overrides={"p000001.jig": KILL},
        )
        executor = ScanExecutor(manager, small_table.meta, zone_maps=False)
        with pytest.raises(PartitionUnreadableError):
            executor.execute(query)


class TestThreadedDegradation:
    @pytest.mark.parametrize("strategy", ["locking", "shared"])
    def test_overlap_recovers_exact_result(self, small_table, query, strategy):
        manager = make_manager(
            small_table,
            overlapping_specs(small_table),
            overrides={"p000000.jig": KILL},
        )
        engine = ThreadedPartitionEngine(
            manager, small_table.meta, n_threads=3, strategy=strategy
        )
        result = engine.execute(query)
        expected = reference(small_table, query)
        assert np.array_equal(result.tuple_ids, expected)
        assert np.array_equal(
            result.column("a2"), small_table.column("a2")[expected]
        )
        assert engine.fault_events["n_unreadable_partitions"] == 1
        assert engine.fault_events["n_degraded_reads"] > 0

    def test_no_alternative_raises(self, small_table, query):
        manager = make_manager(
            small_table,
            disjoint_specs(small_table),
            overrides={"p000000.jig": KILL},
        )
        engine = ThreadedPartitionEngine(manager, small_table.meta, n_threads=2)
        with pytest.raises(PartitionUnreadableError):
            engine.execute(query)


class TestReplicatedFallback:
    def test_unreadable_local_partition_falls_back(self, small_table):
        """A localized plan losing its partition retreats to the standard
        engine, which reassembles from the overlapping coverage."""
        n = small_table.n_tuples
        all_tids = np.arange(n, dtype=np.int64)
        manager = make_manager(
            small_table,
            [
                # Full-coverage partition: localized plans read only this.
                [SegmentSpec(("a1", "a2", "a3"), all_tids)],
                # Overlapping copy the standard engine can fall back on.
                [SegmentSpec(("a1", "a2", "a3"), all_tids)],
                [SegmentSpec(("a4", "a5", "a6"), all_tids)],
            ],
            overrides={"p000000.jig": KILL},
        )
        executor = ReplicatedExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 4999)})
        # Both full-coverage partitions enter the local plan.
        assert executor.local_plan(query) is not None
        result, stats = executor.execute(query)
        expected = reference(small_table, query)
        assert np.array_equal(result.tuple_ids, expected)
        assert np.array_equal(
            result.column("a3"), small_table.column("a3")[expected]
        )
        assert stats.n_unreadable_partitions >= 1
        assert stats.n_degraded_reads > 0
