"""Lazy column materialization and buffer-pool equivalence across engines.

Every engine must produce bit-identical results whether partitions are
decoded eagerly (the historical path), lazily with projection pushdown, or
served warm from the buffer pool.
"""

import numpy as np
import pytest

from repro.core import Query
from repro.engine import PartitionAtATimeExecutor, ScanExecutor
from repro.engine.parallel import ThreadedPartitionEngine
from repro.engine.replicated import ReplicatedExecutor
from repro.storage import (
    BALOS_HDD,
    BufferPool,
    LazyColumnBlock,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_EXPLICIT,
    deserialize_partition,
    serialize_partition,
)


def reference_answer(table, query):
    mask = np.ones(table.n_tuples, dtype=bool)
    for name, interval in query.where.items():
        column = table.column(name)
        mask &= (column >= interval.lo) & (column <= interval.hi)
    tids = np.nonzero(mask)[0]
    return tids, {name: table.column(name)[tids] for name in query.select}


def assert_matches_reference(result, table, query):
    tids, columns = reference_answer(table, query)
    assert np.array_equal(result.tuple_ids, tids)
    for name in query.select:
        assert np.array_equal(np.asarray(result.column(name)), columns[name])


def make_manager(small_table, pool=None):
    """Hand-built irregular layout: predicate and projected attrs split."""
    device = StorageDevice(BALOS_HDD)
    manager = PartitionManager(small_table.schema, device, buffer_pool=pool)
    a1 = small_table.column("a1")
    lower = np.nonzero(a1 <= 4_999)[0].astype(np.int64)
    upper = np.nonzero(a1 > 4_999)[0].astype(np.int64)
    everyone = np.arange(small_table.n_tuples, dtype=np.int64)
    manager.materialize_specs(
        [
            [SegmentSpec(("a1",), everyone), SegmentSpec(("a2", "a3"), lower)],
            [SegmentSpec(("a2", "a3"), upper)],
            [SegmentSpec(("a4", "a5", "a6"), everyone)],
        ],
        small_table,
        tid_storage=TID_EXPLICIT,
    )
    return manager


QUERIES = [
    (["a2", "a3"], {"a1": (0, 1999)}),
    (["a5", "a2"], {"a1": (2000, 7999)}),
    (["a2"], {"a1": (0, 4999), "a4": (5000, 9999)}),
    (["a1", "a6"], {}),  # no predicate: full-table projection
]


class TestFormatLevelEquivalence:
    def test_lazy_decode_matches_eager(self, small_table):
        manager = make_manager(small_table)
        data = manager.store.get(manager.info(0).key)
        eager = deserialize_partition(data, small_table.schema)
        lazy = deserialize_partition(data, small_table.schema, columns=frozenset())
        assert len(eager.segments) == len(lazy.segments)
        for seg_eager, seg_lazy in zip(eager.segments, lazy.segments):
            assert isinstance(seg_lazy.columns, LazyColumnBlock)
            assert seg_lazy.columns.materialized == frozenset()
            assert np.array_equal(seg_eager.tuple_ids, seg_lazy.tuple_ids)
            for name in seg_eager.attributes:
                assert np.array_equal(
                    seg_eager.columns[name], np.asarray(seg_lazy.columns[name])
                )

    def test_requested_columns_materialize_eagerly(self, small_table):
        manager = make_manager(small_table)
        data = manager.store.get(manager.info(0).key)
        lazy = deserialize_partition(
            data, small_table.schema, columns=frozenset({"a2"})
        )
        seg = lazy.segments[1]  # the (a2, a3) segment
        assert seg.columns.materialized == frozenset({"a2"})
        seg.columns["a3"]  # on-demand decode of an unrequested column
        assert seg.columns.materialized == frozenset({"a2", "a3"})

    def test_lazy_block_rejects_foreign_attribute(self, small_table):
        manager = make_manager(small_table)
        data = manager.store.get(manager.info(2).key)
        lazy = deserialize_partition(data, small_table.schema, columns=frozenset())
        with pytest.raises(KeyError):
            lazy.segments[0].columns["a1"]


@pytest.mark.parametrize("select,where", QUERIES)
class TestEngineEquivalence:
    def test_jigsaw_engine_lazy_and_pooled(self, small_table, select, where):
        query = Query.build(small_table.meta, select, where)
        pool = BufferPool(1 << 24)
        cold = PartitionAtATimeExecutor(make_manager(small_table), small_table.meta)
        pooled = PartitionAtATimeExecutor(
            make_manager(small_table, pool), small_table.meta
        )
        result_cold, stats_cold = cold.execute(query)
        result_w1, stats_w1 = pooled.execute(query)
        result_w2, stats_w2 = pooled.execute(query)  # warm: pure pool hits
        for result in (result_cold, result_w1, result_w2):
            assert_matches_reference(result, small_table, query)
        # Simulated accounting of the first pooled run matches the pool-less
        # run exactly; the warm repeat charges no device time at all.
        assert stats_w1.bytes_read == stats_cold.bytes_read
        assert stats_w1.io_time_s == stats_cold.io_time_s
        assert stats_w2.io_time_s == 0.0
        assert stats_w2.bytes_read == 0
        assert stats_w2.n_pool_hits == stats_w2.n_partition_reads > 0

    def test_jigsaw_engine_with_zone_maps(self, small_table, select, where):
        query = Query.build(small_table.meta, select, where)
        executor = PartitionAtATimeExecutor(
            make_manager(small_table, BufferPool(1 << 24)),
            small_table.meta,
            zone_maps=True,
        )
        for _ in range(2):
            result, _stats = executor.execute(query)
            assert_matches_reference(result, small_table, query)

    def test_scan_engine_lazy_and_pooled(self, small_table, select, where):
        query = Query.build(small_table.meta, select, where)
        pooled = ScanExecutor(
            make_manager(small_table, BufferPool(1 << 24)),
            small_table.meta,
            zone_maps=False,
        )
        cold_result, cold_stats = ScanExecutor(
            make_manager(small_table), small_table.meta, zone_maps=False
        ).execute(query)
        assert_matches_reference(cold_result, small_table, query)
        warm_stats = None
        for _ in range(2):
            result, warm_stats = pooled.execute(query)
            assert_matches_reference(result, small_table, query)
        assert warm_stats.io_time_s == 0.0
        assert warm_stats.n_pool_hits > 0

    def test_threaded_engine_both_strategies(self, small_table, select, where):
        query = Query.build(small_table.meta, select, where)
        serial_result, _ = PartitionAtATimeExecutor(
            make_manager(small_table), small_table.meta
        ).execute(query)
        for strategy in ("locking", "shared"):
            engine = ThreadedPartitionEngine(
                make_manager(small_table, BufferPool(1 << 24)),
                small_table.meta,
                n_threads=3,
                strategy=strategy,
            )
            for _ in range(2):  # second pass runs warm off the pool
                result = engine.execute(query)
                assert np.array_equal(result.tuple_ids, serial_result.tuple_ids)
                for name in query.select:
                    assert np.array_equal(
                        result.column(name), serial_result.column(name)
                    )

    def test_replicated_executor_fallback_path(self, small_table, select, where):
        query = Query.build(small_table.meta, select, where)
        executor = ReplicatedExecutor(
            make_manager(small_table, BufferPool(1 << 24)), small_table.meta
        )
        for _ in range(2):
            result, _stats = executor.execute(query)
            assert_matches_reference(result, small_table, query)


class TestEvictionDoesNotCorruptResults:
    def test_tiny_pool_thrashes_but_stays_correct(self, small_table):
        """A pool smaller than the working set just degrades to misses."""
        info_bytes = [0, 0, 0]
        manager = make_manager(small_table)
        info_bytes = [manager.info(pid).n_bytes for pid in manager.pids()]
        pool = BufferPool(capacity_bytes=max(info_bytes) + 1)
        executor = PartitionAtATimeExecutor(
            make_manager(small_table, pool), small_table.meta
        )
        query = Query.build(small_table.meta, ["a5", "a2"], {"a1": (2000, 7999)})
        for _ in range(3):
            result, _stats = executor.execute(query)
            assert_matches_reference(result, small_table, query)
        assert pool.stats.n_evictions > 0


@pytest.mark.slow
class TestConcurrentLoads:
    def test_threaded_engine_shared_pool_smoke(self, small_table):
        """Many threads loading through one pool: no corruption, no deadlock."""
        pool = BufferPool(capacity_bytes=1 << 24)
        manager = make_manager(small_table, pool)
        serial_result, _ = PartitionAtATimeExecutor(
            make_manager(small_table), small_table.meta
        ).execute(
            Query.build(small_table.meta, ["a5", "a2"], {"a1": (2000, 7999)})
        )
        query = Query.build(small_table.meta, ["a5", "a2"], {"a1": (2000, 7999)})
        for strategy in ("locking", "shared"):
            engine = ThreadedPartitionEngine(
                manager, small_table.meta, n_threads=8, strategy=strategy
            )
            for _ in range(3):
                result = engine.execute(query)
                assert np.array_equal(result.tuple_ids, serial_result.tuple_ids)
                for name in query.select:
                    assert np.array_equal(
                        result.column(name), serial_result.column(name)
                    )
        assert pool.stats.n_hits > 0
