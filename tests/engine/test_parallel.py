"""Tests for the parallel engines: threaded correctness + simulator shapes."""

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.engine import PartitionAtATimeExecutor
from repro.engine.parallel import (
    ParallelSimParams,
    ThreadedPartitionEngine,
    simulate_lock_based,
    simulate_shared_scan,
)
from repro.layouts import BuildContext, IrregularLayout
from repro.storage import BALOS_HDD, EBS_IO1, ColumnTable


@pytest.fixture()
def tiny_layout():
    """A small irregular layout the threaded engines can afford to chew
    through tuple by tuple."""
    rng = np.random.default_rng(5)
    from repro.core import TableSchema

    schema = TableSchema.uniform([f"a{i}" for i in range(1, 7)])
    columns = {
        name: rng.integers(0, 1000, 800).astype(np.int32)
        for name in schema.attribute_names
    }
    table = ColumnTable.build("T", schema, columns)
    q1 = Query.build(table.meta, ["a2", "a3"], {"a1": (0, 399)}, label="Q1")
    q2 = Query.build(table.meta, ["a5"], {"a4": (500, 999)}, label="Q2")
    train = Workload(table.meta, [q1, q2])
    ctx = BuildContext(file_segment_bytes=2 * 1024)
    layout = IrregularLayout(selection_enabled=False).build(table, train, ctx)
    return table, layout, [q1, q2]


class TestThreadedEngines:
    @pytest.mark.parametrize("strategy", ["locking", "shared"])
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_matches_serial_engine(self, tiny_layout, strategy, n_threads):
        table, layout, queries = tiny_layout
        serial = PartitionAtATimeExecutor(layout.manager, table.meta)
        threaded = ThreadedPartitionEngine(
            layout.manager, table.meta, n_threads=n_threads, strategy=strategy
        )
        for query in queries:
            expected, _stats = serial.execute(query)
            actual = threaded.execute(query)
            assert actual.equals(expected), (strategy, n_threads, query.label)

    def test_no_predicate_query(self, tiny_layout):
        table, layout, _queries = tiny_layout
        query = Query.build(table.meta, ["a6"])
        serial = PartitionAtATimeExecutor(layout.manager, table.meta)
        threaded = ThreadedPartitionEngine(layout.manager, table.meta, n_threads=3)
        expected, _stats = serial.execute(query)
        assert threaded.execute(query).equals(expected)

    def test_unknown_strategy_rejected(self, tiny_layout):
        table, layout, _queries = tiny_layout
        with pytest.raises(ValueError):
            ThreadedPartitionEngine(layout.manager, table.meta, strategy="magic")


class TestSimulator:
    SIZES = [8 << 20] * 64
    TUPLES = [100_000] * 64

    def test_lock_based_beats_shared_at_few_threads(self):
        lock = simulate_lock_based(self.SIZES, self.TUPLES, 8, EBS_IO1)
        shared = simulate_shared_scan(self.SIZES, self.TUPLES, 8, EBS_IO1)
        assert lock.total_s < shared.total_s

    def test_shared_beats_lock_at_many_threads(self):
        lock = simulate_lock_based(self.SIZES, self.TUPLES, 36, EBS_IO1)
        shared = simulate_shared_scan(self.SIZES, self.TUPLES, 36, EBS_IO1)
        assert shared.total_s < lock.total_s

    def test_lock_compute_grows_with_threads(self):
        few = simulate_lock_based(self.SIZES, self.TUPLES, 8, EBS_IO1)
        many = simulate_lock_based(self.SIZES, self.TUPLES, 36, EBS_IO1)
        assert many.compute_s >= few.compute_s

    def test_shared_compute_shrinks_with_threads(self):
        few = simulate_shared_scan(self.SIZES, self.TUPLES, 8, EBS_IO1)
        many = simulate_shared_scan(self.SIZES, self.TUPLES, 36, EBS_IO1)
        assert many.compute_s < few.compute_s

    def test_shared_io_grows_with_threads(self):
        few = simulate_shared_scan(self.SIZES, self.TUPLES, 8, EBS_IO1)
        many = simulate_shared_scan(self.SIZES, self.TUPLES, 36, EBS_IO1)
        assert many.io_s > few.io_s

    def test_single_thread_has_no_waiting(self):
        lock = simulate_lock_based(self.SIZES, self.TUPLES, 1, BALOS_HDD)
        assert lock.waiting_s == pytest.approx(0.0)

    def test_breakdown_total(self):
        breakdown = simulate_shared_scan(self.SIZES, self.TUPLES, 4, BALOS_HDD)
        assert breakdown.total_s == pytest.approx(
            breakdown.io_s + breakdown.compute_s + breakdown.waiting_s
        )

    def test_custom_params(self):
        params = ParallelSimParams(process_tuple_s=1e-6)
        slow = simulate_lock_based(self.SIZES, self.TUPLES, 4, BALOS_HDD, params)
        fast = simulate_lock_based(self.SIZES, self.TUPLES, 4, BALOS_HDD)
        assert slow.compute_s > fast.compute_s
