"""Unit tests for Algorithm 5 — partition-at-a-time evaluation."""

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.engine import PartitionAtATimeExecutor
from repro.engine.stats import CpuModel
from repro.layouts import BuildContext, IrregularLayout, RowLayout
from repro.storage import (
    BALOS_HDD,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_EXPLICIT,
)


def reference_answer(table, query):
    mask = np.ones(table.n_tuples, dtype=bool)
    for name, interval in query.where.items():
        column = table.column(name)
        mask &= (column >= interval.lo) & (column <= interval.hi)
    tids = np.nonzero(mask)[0]
    return tids, {name: table.column(name)[tids] for name in query.select}


def irregular_manager(small_table):
    """A hand-built irregular layout over the test table.

    Partition 0: a1 (all tuples) + a2, a3 for the lower half of a1 values.
    Partition 1: a2, a3 for the upper half (different tuple order context).
    Partition 2: a4, a5, a6 for all tuples.
    """
    device = StorageDevice(BALOS_HDD)
    manager = PartitionManager(small_table.schema, device)
    a1 = small_table.column("a1")
    lower = np.nonzero(a1 <= 4_999)[0].astype(np.int64)
    upper = np.nonzero(a1 > 4_999)[0].astype(np.int64)
    everyone = np.arange(small_table.n_tuples, dtype=np.int64)
    manager.materialize_specs(
        [
            [SegmentSpec(("a1",), everyone), SegmentSpec(("a2", "a3"), lower)],
            [SegmentSpec(("a2", "a3"), upper)],
            [SegmentSpec(("a4", "a5", "a6"), everyone)],
        ],
        small_table,
        tid_storage=TID_EXPLICIT,
    )
    return manager


class TestCorrectness:
    def test_matches_reference_on_trained_query(self, small_table):
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 1999)})
        result, stats = executor.execute(query)
        tids, columns = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)
        for name in query.select:
            assert np.array_equal(result.column(name), columns[name])

    def test_projection_spans_partitions(self, small_table):
        """Projected attributes living in a different partition than the
        predicate exercise the projection phase (lines 17-23)."""
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a5", "a2"], {"a1": (2000, 7999)})
        result, stats = executor.execute(query)
        tids, columns = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)
        assert np.array_equal(result.column("a5"), columns["a5"])

    def test_multi_predicate_conjunction(self, small_table):
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(
            small_table.meta, ["a2"], {"a1": (0, 4999), "a4": (5000, 9999)}
        )
        result, _stats = executor.execute(query)
        tids, _cols = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)

    def test_no_predicates_returns_everything(self, small_table):
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a6"])
        result, _stats = executor.execute(query)
        assert result.n_tuples == small_table.n_tuples
        assert np.array_equal(result.column("a6"), small_table.column("a6"))

    def test_tiny_or_empty_result(self, small_table):
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        # Two point predicates: almost certainly no tuple satisfies both.
        query = Query.build(
            small_table.meta, ["a2"], {"a1": (5000, 5000), "a4": (5000, 5000)}
        )
        result, _stats = executor.execute(query)
        tids, _cols = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)


class TestAccessPattern:
    def test_each_partition_read_at_most_once(self, small_table):
        """The whole point of partition-at-a-time: no partition is loaded
        twice, even when predicates and projections interleave."""
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a5"], {"a1": (0, 4999)})
        _result, stats = executor.execute(query)
        assert stats.n_partition_reads <= len(manager)

    def test_untouched_partition_not_read(self, small_table):
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        # Every qualifying tuple (a1 <= 4999) has its a2/a3 cells co-located
        # with a1 in partition 0, so neither the upper-half partition nor the
        # (a4, a5, a6) partition is loaded.
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 4999)})
        _result, stats = executor.execute(query)
        assert stats.n_partition_reads == 1
        assert stats.bytes_read == manager.info(0).n_bytes

    def test_selection_fills_local_cells_to_avoid_revisits(self, small_table):
        """Cells co-located with the predicate partition are taken during the
        selection phase (Algorithm 5 line 16), so the projection phase reads
        only the upper-half partition."""
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a2"], {"a1": (0, 9999)})
        _result, stats = executor.execute(query)
        # partition 0 (pred + lower a2) and partition 1 (upper a2): 2 reads.
        assert stats.n_partition_reads == 2

    def test_stats_accounting(self, small_table):
        manager = irregular_manager(small_table)
        executor = PartitionAtATimeExecutor(
            manager, small_table.meta, cpu_model=CpuModel()
        )
        query = Query.build(small_table.meta, ["a2"], {"a1": (0, 4999)})
        result, stats = executor.execute(query)
        assert stats.hash_inserts == result.n_tuples
        assert stats.cpu_time_s > 0
        assert stats.simulated_time_s == pytest.approx(
            stats.io_time_s + stats.cpu_time_s
        )
        assert stats.n_result_tuples == result.n_tuples


class TestInvalidTransitions:
    def test_tuple_validated_then_invalidated(self, small_table):
        """A tuple passing the vacuous check in one partition must be removed
        once a later partition's predicate rejects it (lines 8-11)."""
        device = StorageDevice(BALOS_HDD)
        manager = PartitionManager(small_table.schema, device)
        everyone = np.arange(small_table.n_tuples, dtype=np.int64)
        # Partition 0 holds projected a2 (no predicate attrs!), partition 1
        # holds the predicate attr a1.  Scanning order is pid order, so a2's
        # cells are stashed for every tuple before a1 invalidates most.
        manager.materialize_specs(
            [
                [SegmentSpec(("a2",), everyone)],
                [SegmentSpec(("a1",), everyone)],
            ],
            small_table,
            tid_storage=TID_EXPLICIT,
        )
        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a2"], {"a1": (0, 999)})
        result, _stats = executor.execute(query)
        tids, columns = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)
        assert np.array_equal(result.column("a2"), columns["a2"])
