"""Unit tests for predicate evaluation."""

import numpy as np
import pytest

from repro.core import Query
from repro.engine import Conjunction, RangePredicate


class TestRangePredicate:
    def test_mask_closed_interval(self):
        predicate = RangePredicate("a", 2, 5)
        column = np.array([1, 2, 3, 5, 6])
        assert np.array_equal(predicate.mask(column), [False, True, True, True, False])

    def test_equality_as_degenerate_range(self):
        predicate = RangePredicate("a", 3, 3)
        column = np.array([2, 3, 4])
        assert np.array_equal(predicate.mask(column), [False, True, False])

    def test_float_bounds(self):
        predicate = RangePredicate("a", 0.05, 0.07)
        column = np.array([0.04, 0.05, 0.06, 0.07, 0.08])
        assert predicate.mask(column).sum() == 3


class TestConjunction:
    def test_from_query(self, paper_table):
        query = Query.build(
            paper_table, ["a2"], {"a1": (11, 13), "a4": (44, 46)}
        )
        conjunction = Conjunction.from_query(query)
        assert len(conjunction) == 2
        assert conjunction.attributes == {"a1", "a4"}
        assert conjunction.predicate_for("a1").lo == 11
        assert conjunction.predicate_for("zz") is None

    def test_empty_conjunction_is_falsy(self, paper_table):
        query = Query.build(paper_table, ["a2"])
        conjunction = Conjunction.from_query(query)
        assert not conjunction

    def test_evaluate_available_skips_absent_attributes(self):
        conjunction = Conjunction(
            [RangePredicate("a", 0, 5), RangePredicate("b", 10, 20)]
        )
        columns = {"a": np.array([1, 7, 3])}
        mask, n_evaluated = conjunction.evaluate_available(columns, 3)
        assert n_evaluated == 1
        assert np.array_equal(mask, [True, False, True])

    def test_evaluate_available_all_absent_is_vacuous(self):
        conjunction = Conjunction([RangePredicate("a", 0, 5)])
        mask, n_evaluated = conjunction.evaluate_available({}, 4)
        assert n_evaluated == 0
        assert mask.all()

    def test_evaluate_available_ands_predicates(self):
        conjunction = Conjunction(
            [RangePredicate("a", 0, 5), RangePredicate("b", 0, 5)]
        )
        columns = {"a": np.array([1, 1, 9]), "b": np.array([1, 9, 1])}
        mask, n_evaluated = conjunction.evaluate_available(columns, 3)
        assert n_evaluated == 2
        assert np.array_equal(mask, [True, False, False])
