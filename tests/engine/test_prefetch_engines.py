"""Read-ahead through the engines: simulated accounting must stay
bit-identical with prefetching on, results must stay oracle-exact, and the
PlanReader pin/release protocol must survive prefetch pressure over a tiny
buffer pool."""

import threading

import numpy as np
import pytest

from repro.engine.parallel import ThreadedPartitionEngine
from repro.layouts import BuildContext
from repro.plan.operators import PlanReader
from repro.plan.stats import ExecutionStats
from repro.storage import (
    BALOS_HDD,
    BufferPool,
    MemoryBlobStore,
    PartitionManager,
    Prefetcher,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)
from repro.testing.oracle import ORACLE_LAYOUTS, run_reference_query
from repro.testing.snapshot import collect_stats_snapshot


def prefetch_ctx(depth: int = 4) -> BuildContext:
    return BuildContext(
        file_segment_bytes=2048, schism_sample_size=100, prefetch_depth=depth
    )


class TestPrefetchAccountingIdentity:
    def test_snapshot_sweep_is_bit_identical_with_prefetch(self):
        """The full 768-entry stats snapshot, inline vs prefetch_depth=4:
        every signature (all counters except the wall clock) must match
        entry for entry — read-ahead changes *when* loads run, never what
        they cost."""
        inline = collect_stats_snapshot()
        prefetched = collect_stats_snapshot(ctx=prefetch_ctx())
        assert len(inline) == len(prefetched)
        for base, ahead in zip(inline, prefetched):
            assert base.label == ahead.label
            assert base.signature == ahead.signature, (
                f"{base.label}: accounting drifted under prefetch"
            )

    def test_results_exact_across_layouts_with_prefetch(self, rng):
        from repro.testing.oracle import random_table, random_workload

        table = random_table(rng, n_tuples=300)
        workload = random_workload(rng, table, n_queries=4)
        ctx = prefetch_ctx()
        for name, make in ORACLE_LAYOUTS:
            layout = make().build(table, workload, ctx)
            for query in workload:
                expected = run_reference_query(table, query)
                outcome = layout.executor.execute(query)
                result = outcome[0] if isinstance(outcome, tuple) else outcome
                assert result.equals(expected), f"{name}: {query.label}"

    def test_threaded_engines_exact_with_prefetch(self, rng):
        from repro.testing.oracle import random_table, random_workload

        table = random_table(rng, n_tuples=300)
        workload = random_workload(rng, table, n_queries=4)
        irregular = dict(ORACLE_LAYOUTS)["irregular"]().build(
            table, workload, prefetch_ctx()
        )
        for strategy in ("locking", "shared"):
            engine = ThreadedPartitionEngine(
                irregular.manager, table.meta, n_threads=2,
                strategy=strategy, prefetch_depth=4,
            )
            for query in workload:
                expected = run_reference_query(table, query)
                assert engine.execute(query).equals(expected), (
                    f"threaded-{strategy}: {query.label}"
                )


N_PARTITIONS = 12
N_THREADS = 6
N_ITERATIONS = 40


@pytest.mark.slow
class TestPrefetchPoolStress:
    def test_pin_release_and_eviction_under_prefetch_pressure(self, small_table):
        """Many PlanReaders with their own prefetchers hammer one manager
        whose buffer pool holds only a few partitions: every served
        partition must carry pristine cells, pins must balance to zero, and
        the pool budget invariant must hold throughout."""
        pool = BufferPool(capacity_bytes=48 * 1024)  # a handful of entries
        manager = PartitionManager(
            small_table.schema,
            StorageDevice(BALOS_HDD),
            MemoryBlobStore(),
            buffer_pool=pool,
        )
        n = small_table.n_tuples
        chunk = n // N_PARTITIONS
        specs = [
            [
                SegmentSpec(
                    ("a1", "a2"),
                    np.arange(i * chunk, (i + 1) * chunk, dtype=np.int64),
                )
            ]
            for i in range(N_PARTITIONS)
        ]
        manager.materialize_specs(specs, small_table, tid_storage=TID_CATALOG)
        pids = list(manager.pids())
        a1 = small_table.column("a1")

        load_lock = threading.Lock()
        errors: list = []

        def worker(thread_id: int) -> None:
            rng = np.random.default_rng(thread_id)
            try:
                for _ in range(N_ITERATIONS):
                    order = [int(p) for p in rng.permutation(pids)[:6]]
                    stats = ExecutionStats()
                    prefetcher = Prefetcher(manager, depth=3)
                    reader = PlanReader(
                        manager, stats, lock=load_lock,
                        pin_hints=frozenset(order[:2]),
                        prefetcher=prefetcher,
                    )
                    try:
                        reader.prefetch(order)
                        for pid in order:
                            partition = reader.load(pid)
                            for segment in partition.segments:
                                tids = segment.tuple_ids
                                if not np.array_equal(
                                    segment.columns["a1"], a1[tids]
                                ):
                                    errors.append(
                                        f"pid {pid}: corrupt cells served"
                                    )
                    finally:
                        reader.release()
                        prefetcher.close()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(f"thread {thread_id}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # Every pin was released: nothing is left immovable in the pool.
        assert all(entry.pins == 0 for entry in pool._entries.values())
        assert pool.current_bytes <= pool.capacity_bytes
