"""Focused tests for the partition-local executor's planning rules."""

import numpy as np
import pytest

from repro.core import Query
from repro.engine.replicated import ReplicatedExecutor
from repro.errors import StorageError
from repro.storage import (
    BALOS_HDD,
    PartitionManager,
    PhysicalSegment,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    TID_EXPLICIT,
)


@pytest.fixture()
def manual_replicated(small_table):
    """Hand-built layout: a1 column partition + two (a2,a3) halves carrying
    replicas of a1 for their own tuples."""
    device = StorageDevice(BALOS_HDD)
    manager = PartitionManager(small_table.schema, device)
    n = small_table.n_tuples
    everyone = np.arange(n, dtype=np.int64)
    # Value-aligned halves on a1 (tight zones, as Jigsaw's splits produce).
    a1 = small_table.column("a1")
    halves = [
        np.nonzero(a1 <= 4999)[0].astype(np.int64),
        np.nonzero(a1 > 4999)[0].astype(np.int64),
    ]
    manager.materialize_specs(
        [
            [SegmentSpec(("a1",), everyone)],
            [SegmentSpec(("a2", "a3"), halves[0])],
            [SegmentSpec(("a2", "a3"), halves[1])],
        ],
        small_table,
        tid_storage=TID_EXPLICIT,
    )
    # Append a1 replicas into the two projection partitions.
    for pid, tids in ((1, halves[0]), (2, halves[1])):
        partition, _io = manager.load(pid)
        partition.segments.append(
            PhysicalSegment(
                attributes=("a1",),
                tuple_ids=tids,
                columns={"a1": small_table.column("a1")[tids]},
                tid_storage=TID_CATALOG,
                replica=True,
            )
        )
        manager.replace_partition(partition)
    return manager


class TestLocalPlan:
    def test_covered_query_is_local(self, small_table, manual_replicated):
        executor = ReplicatedExecutor(manual_replicated, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 4999)})
        plan = executor.local_plan(query)
        assert plan == (1, 2)

    def test_uncovered_predicate_rejected(self, small_table, manual_replicated):
        executor = ReplicatedExecutor(manual_replicated, small_table.meta)
        # a4 cells exist nowhere locally -> no local plan.
        query = Query.build(
            small_table.meta, ["a2"], {"a1": (0, 4999), "a4": (0, 4999)}
        )
        assert executor.local_plan(query) is None

    def test_no_predicates_rejected(self, small_table, manual_replicated):
        executor = ReplicatedExecutor(manual_replicated, small_table.meta)
        query = Query.build(small_table.meta, ["a2"])
        assert executor.local_plan(query) is None

    def test_local_answers_match_standard(self, small_table, manual_replicated):
        executor = ReplicatedExecutor(manual_replicated, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (1000, 6000)})
        local, local_stats = executor.execute(query)
        standard, _stats = executor.standard.execute(query)
        assert local.equals(standard)
        assert local_stats.hash_inserts == 0

    def test_local_skips_predicate_only_partition(self, small_table, manual_replicated):
        executor = ReplicatedExecutor(manual_replicated, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 9999)})
        _result, stats = executor.execute(query)
        # Partitions 1 and 2 only; the a1 column partition is never read.
        assert stats.n_partition_reads == 2

    def test_zone_pruning_in_local_path(self, small_table, manual_replicated):
        """The half whose a1 replica zone misses the window is skipped
        without I/O (the halves are value-aligned on a1)."""
        executor = ReplicatedExecutor(manual_replicated, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a3"], {"a1": (6000, 9999)})
        result, stats = executor.execute(query)
        assert stats.n_partitions_skipped == 1
        assert stats.n_partition_reads == 1
        expected = int((small_table.column("a1") >= 6000).sum())
        assert result.n_tuples == expected
