"""Unit tests for result sets."""

import numpy as np
import pytest

from repro.engine import ResultSet
from repro.errors import JigsawError


class TestResultSet:
    def test_sorted_by_tuple_id(self):
        result = ResultSet(
            np.array([5, 1, 3]), {"a": np.array([50, 10, 30])}
        )
        assert np.array_equal(result.tuple_ids, [1, 3, 5])
        assert np.array_equal(result.column("a"), [10, 30, 50])

    def test_length_mismatch_rejected(self):
        with pytest.raises(JigsawError):
            ResultSet(np.array([1, 2]), {"a": np.array([1])})

    def test_missing_column_raises(self):
        result = ResultSet(np.array([1]), {"a": np.array([1])})
        with pytest.raises(JigsawError):
            result.column("b")

    def test_equals(self):
        left = ResultSet(np.array([2, 1]), {"a": np.array([20, 10])})
        right = ResultSet(np.array([1, 2]), {"a": np.array([10, 20])})
        assert left.equals(right)

    def test_equals_detects_value_difference(self):
        left = ResultSet(np.array([1]), {"a": np.array([10])})
        right = ResultSet(np.array([1]), {"a": np.array([11])})
        assert not left.equals(right)

    def test_equals_detects_column_set_difference(self):
        left = ResultSet(np.array([1]), {"a": np.array([10])})
        right = ResultSet(np.array([1]), {"b": np.array([10])})
        assert not left.equals(right)

    def test_equals_detects_tuple_difference(self):
        left = ResultSet(np.array([1]), {"a": np.array([10])})
        right = ResultSet(np.array([2]), {"a": np.array([10])})
        assert not left.equals(right)

    def test_empty_result(self):
        result = ResultSet(np.empty(0, np.int64), {"a": np.empty(0)})
        assert result.n_tuples == 0 and len(result) == 0
