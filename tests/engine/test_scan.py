"""Unit tests for the baseline scan engine (zone maps, skipping, reuse)."""

import numpy as np
import pytest

from repro.core import Query
from repro.engine import ScanExecutor
from repro.storage import (
    BALOS_HDD,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    TID_IMPLICIT,
)


def sorted_table_manager(small_table, sort_by="a1", n_groups=4):
    """Column-H-like layout over value-sorted groups => tight zone maps."""
    device = StorageDevice(BALOS_HDD)
    manager = PartitionManager(small_table.schema, device)
    order = np.argsort(small_table.column(sort_by), kind="stable").astype(np.int64)
    groups = np.array_split(order, n_groups)
    specs = [
        [SegmentSpec((attr,), tids)]
        for tids in groups
        for attr in small_table.schema.attribute_names
    ]
    manager.materialize_specs(specs, small_table, tid_storage=TID_CATALOG)
    return manager


def reference_answer(table, query):
    mask = np.ones(table.n_tuples, dtype=bool)
    for name, interval in query.where.items():
        column = table.column(name)
        mask &= (column >= interval.lo) & (column <= interval.hi)
    tids = np.nonzero(mask)[0]
    return tids, {name: table.column(name)[tids] for name in query.select}


class TestCorrectness:
    def test_column_layout_answer(self, small_table):
        device = StorageDevice(BALOS_HDD)
        manager = PartitionManager(small_table.schema, device)
        everyone = np.arange(small_table.n_tuples, dtype=np.int64)
        specs = [
            [SegmentSpec((a,), everyone)] for a in small_table.schema.attribute_names
        ]
        manager.materialize_specs(specs, small_table, tid_storage=TID_IMPLICIT)
        executor = ScanExecutor(manager, small_table.meta, zone_maps=False)
        query = Query.build(small_table.meta, ["a2", "a5"], {"a1": (0, 1999)})
        result, _stats = executor.execute(query)
        tids, columns = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)
        assert np.array_equal(result.column("a5"), columns["a5"])

    def test_sorted_groups_answer(self, small_table):
        manager = sorted_table_manager(small_table)
        executor = ScanExecutor(manager, small_table.meta, zone_maps=True)
        query = Query.build(small_table.meta, ["a2"], {"a1": (0, 2499)})
        result, _stats = executor.execute(query)
        tids, columns = reference_answer(small_table, query)
        assert np.array_equal(result.tuple_ids, tids)
        assert np.array_equal(result.column("a2"), columns["a2"])

    def test_no_where_clause(self, small_table):
        manager = sorted_table_manager(small_table)
        executor = ScanExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a3"])
        result, _stats = executor.execute(query)
        assert result.n_tuples == small_table.n_tuples


class TestZoneMaps:
    def test_skips_non_matching_partitions(self, small_table):
        manager = sorted_table_manager(small_table, n_groups=4)
        with_maps = ScanExecutor(manager, small_table.meta, zone_maps=True)
        query = Query.build(small_table.meta, ["a1"], {"a1": (0, 1000)})
        _result, stats = with_maps.execute(query)
        assert stats.n_partitions_skipped > 0

    def test_skipping_reduces_bytes(self, small_table):
        manager = sorted_table_manager(small_table, n_groups=4)
        query = Query.build(small_table.meta, ["a2"], {"a1": (0, 1000)})
        _r, skipping = ScanExecutor(manager, small_table.meta, zone_maps=True).execute(query)
        manager.device.reset_stats()
        _r, full = ScanExecutor(manager, small_table.meta, zone_maps=False).execute(query)
        assert skipping.bytes_read < full.bytes_read

    def test_results_identical_with_and_without_maps(self, small_table):
        manager = sorted_table_manager(small_table, n_groups=8)
        query = Query.build(small_table.meta, ["a2", "a4"], {"a1": (3000, 6000)})
        with_maps, _s = ScanExecutor(manager, small_table.meta, zone_maps=True).execute(query)
        without, _s = ScanExecutor(manager, small_table.meta, zone_maps=False).execute(query)
        assert with_maps.equals(without)


class TestIOAccounting:
    def test_partition_reused_across_phases(self, small_table):
        """A partition read for predicates is not re-read for projection."""
        manager = sorted_table_manager(small_table, n_groups=2)
        executor = ScanExecutor(manager, small_table.meta, zone_maps=False)
        # a1 is both predicate and projected: its partitions load once.
        query = Query.build(small_table.meta, ["a1"], {"a1": (0, 9999)})
        _result, stats = executor.execute(query)
        assert stats.n_partition_reads == 2  # the two a1 column pieces only

    def test_projection_skips_partitions_without_selected_tuples(self, small_table):
        manager = sorted_table_manager(small_table, n_groups=4)
        executor = ScanExecutor(manager, small_table.meta, zone_maps=True)
        query = Query.build(small_table.meta, ["a2"], {"a1": (0, 1000)})
        _result, stats = executor.execute(query)
        # a2 pieces of groups with no matching a1 values are skipped.
        loaded_bytes = stats.bytes_read
        all_bytes = manager.total_bytes()
        assert loaded_bytes < all_bytes / 2

    def test_chunked_reads_increase_request_count(self, small_table):
        device = StorageDevice(BALOS_HDD)
        manager = PartitionManager(small_table.schema, device)
        everyone = np.arange(small_table.n_tuples, dtype=np.int64)
        manager.materialize_specs(
            [[SegmentSpec(("a1",), everyone)]], small_table, tid_storage=TID_IMPLICIT
        )
        chunked = ScanExecutor(
            manager, small_table.meta, zone_maps=False, chunk_size=1024
        )
        query = Query.build(small_table.meta, ["a1"], {"a1": (0, 9999)})
        chunked.execute(query)
        assert device.stats.n_reads > 1
