"""Unit tests for execution statistics and the CPU model."""

import pytest

from repro.engine.stats import CpuModel, ExecutionStats


class TestCpuModel:
    def test_cpu_time_is_linear_in_events(self):
        model = CpuModel()
        single = model.cpu_time(cells_scanned=1000)
        double = model.cpu_time(cells_scanned=2000)
        assert double == pytest.approx(2 * single)

    def test_scaled_divides_by_cores(self):
        model = CpuModel().scaled(4)
        base = CpuModel()
        assert model.cpu_time(cells_scanned=1000) == pytest.approx(
            base.cpu_time(cells_scanned=1000) / 4
        )

    def test_scaled_clamps_to_one_core(self):
        assert CpuModel().scaled(0).cores == 1

    def test_all_event_kinds_contribute(self):
        model = CpuModel()
        t = model.cpu_time(
            cells_scanned=1,
            cells_gathered=1,
            hash_inserts=1,
            hash_updates=1,
            materialized_bytes=1,
            tuples_iterated=1,
        )
        assert t == pytest.approx(
            model.cell_scan_s
            + model.cell_gather_s
            + model.hash_insert_s
            + model.hash_update_s
            + model.materialize_byte_s
            + model.tuple_overhead_s
        )


class TestExecutionStats:
    def test_simulated_time_is_io_plus_cpu(self):
        stats = ExecutionStats(io_time_s=1.5, cpu_time_s=0.5)
        assert stats.simulated_time_s == pytest.approx(2.0)

    def test_charge_cpu_uses_counters(self):
        stats = ExecutionStats(cells_scanned=10, hash_inserts=2)
        model = CpuModel()
        stats.charge_cpu(model)
        assert stats.cpu_time_s == pytest.approx(
            10 * model.cell_scan_s + 2 * model.hash_insert_s
        )

    def test_add_accumulates_every_field(self):
        left = ExecutionStats(bytes_read=10, io_time_s=1.0, hash_inserts=3)
        right = ExecutionStats(bytes_read=5, io_time_s=0.5, hash_inserts=4)
        left.add(right)
        assert left.bytes_read == 15
        assert left.io_time_s == pytest.approx(1.5)
        assert left.hash_inserts == 7
        # the right-hand side is untouched
        assert right.bytes_read == 5
