"""Audit of ExecutionStats merging in the threaded engines.

The threaded engines accrue I/O into per-worker ``ExecutionStats`` plus a
coordinator ledger (serial failure drain and projection loads), then sum
them into :attr:`ThreadedPartitionEngine.last_stats`.  The contract audited
here: every counter in the reported totals is *exactly* the sum of the
per-worker counters and the coordinator's — nothing double-counted, nothing
dropped — healthy or under injected faults, with or without a buffer pool.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import Query
from repro.engine.parallel import ThreadedPartitionEngine
from repro.plan import ExecutionStats
from repro.storage import (
    BALOS_HDD,
    BufferPool,
    FaultConfig,
    FaultInjectingBlobStore,
    MemoryBlobStore,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)

KILL = FaultConfig(transient_error_rate=1.0)
FLAKY = FaultConfig(transient_error_rate=0.4)

STRATEGIES = ["locking", "shared"]


def make_manager(
    small_table, spec_groups, overrides=None, buffer_pool=None, config=None
):
    store = FaultInjectingBlobStore(
        MemoryBlobStore(), config=config, seed=7, overrides=overrides or {}
    )
    manager = PartitionManager(
        small_table.schema,
        StorageDevice(BALOS_HDD),
        store,
        buffer_pool=buffer_pool,
    )
    manager.materialize_specs(spec_groups, small_table, tid_storage=TID_CATALOG)
    return manager


def overlapping_specs(small_table):
    """Partition 0 fully overlapped by partition 1 (loss is recoverable)."""
    n = small_table.n_tuples
    all_tids = np.arange(n, dtype=np.int64)
    return [
        [SegmentSpec(("a1", "a2"), all_tids)],
        [SegmentSpec(("a1", "a2"), all_tids)],
        [SegmentSpec(("a3", "a4", "a5", "a6"), all_tids)],
    ]


def striped_specs(small_table):
    """Several disjoint stripes so multiple workers get real work."""
    n = small_table.n_tuples
    tids = np.arange(n, dtype=np.int64)
    stripes = np.array_split(tids, 4)
    groups = [[SegmentSpec(("a1", "a2"), stripe)] for stripe in stripes]
    groups.append([SegmentSpec(("a3", "a4"), tids)])
    groups.append([SegmentSpec(("a5", "a6"), tids)])
    return groups


@pytest.fixture()
def query(small_table):
    return Query.build(small_table.meta, ["a2", "a3"], {"a1": (0, 4000)})


def summed(engine):
    """Recompute coordinator + workers in the engine's own merge order."""
    total = ExecutionStats()
    total.add(engine.coordinator_stats)
    for worker in engine.worker_stats:
        total.add(worker)
    return total


def assert_exact_merge(engine, result):
    total = summed(engine)
    for field in dataclasses.fields(ExecutionStats):
        if field.name == "n_result_tuples":
            continue  # set on the totals after the merge, from the result
        assert getattr(engine.last_stats, field.name) == getattr(
            total, field.name
        ), f"{field.name} dropped or double-counted in the merge"
    assert engine.last_stats.n_result_tuples == len(result.tuple_ids)
    assert engine.fault_events == {
        "n_unreadable_partitions": engine.last_stats.n_unreadable_partitions,
        "n_degraded_reads": engine.last_stats.n_degraded_reads,
    }


class TestHealthyMerge:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n_threads", [1, 3])
    def test_totals_are_exact_sum(self, small_table, query, strategy, n_threads):
        manager = make_manager(small_table, striped_specs(small_table))
        engine = ThreadedPartitionEngine(
            manager, small_table.meta, strategy=strategy, n_threads=n_threads
        )
        result = engine.execute(query)
        assert_exact_merge(engine, result)
        assert len(engine.worker_stats) == n_threads
        # Healthy run: every load happened on a worker, none on the
        # coordinator's selection drain; projection loads are coordinated.
        assert engine.last_stats.n_partition_reads > 0
        assert (
            sum(w.n_partition_reads for w in engine.worker_stats)
            + engine.coordinator_stats.n_partition_reads
            == engine.last_stats.n_partition_reads
        )
        assert engine.last_stats.n_unreadable_partitions == 0
        assert engine.last_stats.n_degraded_reads == 0
        assert engine.last_stats.bytes_read > 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_workers_share_the_load(self, small_table, query, strategy):
        manager = make_manager(small_table, striped_specs(small_table))
        engine = ThreadedPartitionEngine(
            manager, small_table.meta, strategy=strategy, n_threads=2
        )
        engine.execute(query)
        # With 4 predicate stripes at least one worker must have read
        # something, and no single counter can exceed the merged total.
        for worker in engine.worker_stats:
            assert worker.n_partition_reads <= engine.last_stats.n_partition_reads
            assert worker.bytes_read <= engine.last_stats.bytes_read
        assert any(w.n_partition_reads for w in engine.worker_stats)


class TestFaultMerge:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_unreadable_partition_counters_sum(self, small_table, query, strategy):
        manager = make_manager(
            small_table,
            overlapping_specs(small_table),
            overrides={"p000000.jig": KILL},
        )
        engine = ThreadedPartitionEngine(
            manager, small_table.meta, strategy=strategy, n_threads=2
        )
        result = engine.execute(query)
        assert_exact_merge(engine, result)
        assert engine.last_stats.n_unreadable_partitions == 1
        assert engine.last_stats.n_degraded_reads >= 1
        # The failed worker attempt still burned retries and I/O time; the
        # merge must carry them into the totals.
        assert engine.last_stats.n_retries > 0
        total = summed(engine)
        assert total.n_retries == engine.last_stats.n_retries

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_flaky_store_retries_sum(self, small_table, query, strategy):
        manager = make_manager(
            small_table, striped_specs(small_table), config=FLAKY
        )
        engine = ThreadedPartitionEngine(
            manager, small_table.meta, strategy=strategy, n_threads=3
        )
        result = engine.execute(query)
        assert_exact_merge(engine, result)


class TestPoolMerge:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_pool_hits_sum(self, small_table, query, strategy):
        manager = make_manager(
            small_table, striped_specs(small_table), buffer_pool=BufferPool(1 << 24)
        )
        engine = ThreadedPartitionEngine(
            manager, small_table.meta, strategy=strategy, n_threads=2
        )
        engine.execute(query)  # warm the pool
        result = engine.execute(query)
        assert_exact_merge(engine, result)
        assert engine.last_stats.n_pool_hits > 0
        assert sum(w.n_pool_hits for w in engine.worker_stats) + (
            engine.coordinator_stats.n_pool_hits
        ) == engine.last_stats.n_pool_hits
