"""Tests for the zone-map extension of the partition-at-a-time engine."""

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.engine import PartitionAtATimeExecutor
from repro.layouts import BuildContext, IrregularLayout
from repro.storage import ColumnTable


@pytest.fixture(scope="module")
def layout_setup():
    rng = np.random.default_rng(33)
    from repro.core import TableSchema

    schema = TableSchema.uniform([f"a{i}" for i in range(8)])
    # a0 sorted-ish so horizontal slices get tight, skippable zones.
    columns = {
        name: rng.integers(0, 100_000, 10_000).astype(np.int32)
        for name in schema.attribute_names
    }
    table = ColumnTable.build("t", schema, columns)
    queries = [
        Query.build(table.meta, ["a1", "a2"], {"a0": (lo, lo + 9_999)}, label=f"q{lo}")
        for lo in range(0, 90_001, 10_000)
    ]
    train = Workload(table.meta, queries)
    ctx = BuildContext(file_segment_bytes=4 * 1024)
    layout = IrregularLayout(selection_enabled=False).build(table, train, ctx)
    return table, layout


class TestZoneVerdict:
    def test_results_identical_with_and_without(self, layout_setup):
        table, layout = layout_setup
        plain = PartitionAtATimeExecutor(layout.manager, table.meta, zone_maps=False)
        mapped = PartitionAtATimeExecutor(layout.manager, table.meta, zone_maps=True)
        for lo in (0, 25_000, 70_000):
            query = Query.build(table.meta, ["a1", "a3"], {"a0": (lo, lo + 5_000)})
            expected, _s = plain.execute(query)
            actual, _s = mapped.execute(query)
            assert actual.equals(expected), lo

    def test_multi_predicate_queries(self, layout_setup):
        table, layout = layout_setup
        plain = PartitionAtATimeExecutor(layout.manager, table.meta, zone_maps=False)
        mapped = PartitionAtATimeExecutor(layout.manager, table.meta, zone_maps=True)
        query = Query.build(
            table.meta, ["a2"], {"a0": (10_000, 30_000), "a4": (0, 50_000)}
        )
        expected, _s = plain.execute(query)
        actual, _s = mapped.execute(query)
        assert actual.equals(expected)

    def test_skipping_reduces_io(self, layout_setup):
        """Predicate partitions sliced on a0 outside the query window can be
        resolved from the catalog without I/O."""
        table, layout = layout_setup
        plain = PartitionAtATimeExecutor(layout.manager, table.meta, zone_maps=False)
        mapped = PartitionAtATimeExecutor(layout.manager, table.meta, zone_maps=True)
        query = Query.build(table.meta, ["a1"], {"a0": (0, 4_999)})
        layout.drop_caches()
        _r, plain_stats = plain.execute(query)
        layout.drop_caches()
        _r, mapped_stats = mapped.execute(query)
        assert mapped_stats.n_partitions_skipped > 0
        assert mapped_stats.bytes_read < plain_stats.bytes_read

    def test_disabled_by_default(self, layout_setup):
        table, layout = layout_setup
        executor = PartitionAtATimeExecutor(layout.manager, table.meta)
        query = Query.build(table.meta, ["a1"], {"a0": (0, 4_999)})
        _r, stats = executor.execute(query)
        assert stats.n_partitions_skipped == 0
