"""Integration: all seven layouts must answer every query identically."""

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.layouts import ALL_LAYOUTS, BuildContext
from repro.storage import ColumnTable
from repro.workloads.hap import hap_workload, make_hap_table


@pytest.fixture(scope="module")
def hap_setup():
    table = make_hap_table(8_000, n_attrs=24, seed=11)
    train, templates = hap_workload(
        table.meta, selectivity=0.2, projectivity=6, n_templates=2, n_queries=24, seed=12
    )
    eval_wl, _t = hap_workload(
        table.meta, selectivity=0.2, projectivity=6, n_templates=2, n_queries=4,
        seed=13, templates=templates,
    )
    ctx = BuildContext(file_segment_bytes=32 * 1024, schism_sample_size=400)
    layouts = {}
    for builder_cls in ALL_LAYOUTS:
        layout = builder_cls().build(table, train, ctx)
        layouts[layout.name] = layout
    return table, layouts, list(eval_wl)


class TestCrossLayoutAgreement:
    def test_trained_template_queries(self, hap_setup):
        _table, layouts, queries = hap_setup
        reference = layouts["Row"]
        for query in queries:
            expected, _s = reference.execute(query)
            for name, layout in layouts.items():
                actual, _s = layout.execute(query)
                assert actual.equals(expected), (name, query.label)

    def test_untrained_query(self, hap_setup):
        table, layouts, _queries = hap_setup
        query = Query.build(
            table.meta,
            ["a000", "a010", "a023"],
            {"a005": (100_000, 600_000), "a017": (0, 800_000)},
        )
        reference, _s = layouts["Row"].execute(query)
        for name, layout in layouts.items():
            actual, _s = layout.execute(query)
            assert actual.equals(reference), name

    def test_full_table_query(self, hap_setup):
        table, layouts, _queries = hap_setup
        query = Query.build(table.meta, ["a001"])
        for name, layout in layouts.items():
            result, _s = layout.execute(query)
            assert result.n_tuples == table.n_tuples, name
            assert np.array_equal(result.column("a001"), table.column("a001")), name

    def test_io_accounting_positive(self, hap_setup):
        _table, layouts, queries = hap_setup
        for name, layout in layouts.items():
            layout.drop_caches()
            _r, stats = layout.execute(queries[0])
            assert stats.bytes_read > 0, name
            assert stats.io_time_s > 0, name
            assert stats.simulated_time_s >= stats.io_time_s, name

    def test_cells_stored_exactly_once(self, hap_setup):
        """Across any layout, every (tuple, attribute) cell is stored in
        exactly one partition (Formula 4's validity constraints)."""
        table, layouts, _queries = hap_setup
        for name, layout in layouts.items():
            cells = 0
            for pid in layout.manager.pids():
                info = layout.manager.info(pid)
                cells += sum(
                    len(attrs) * len(tids)
                    for attrs, tids in zip(info.segment_attrs, info.segment_tids)
                )
            assert cells == table.n_tuples * len(table.schema), name
