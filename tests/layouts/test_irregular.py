"""Unit tests for the Jigsaw Irregular layout builder."""

import pytest

from repro.core import IOModel, Query, Workload
from repro.layouts import BuildContext, IrregularLayout, RowLayout
from repro.storage import TID_EXPLICIT, DeviceProfile


@pytest.fixture()
def flat_ctx():
    """Byte-dominated device so splitting pays off at test scale."""
    return BuildContext(
        device_profile=DeviceProfile("flat", IOModel(alpha=1e-8, beta=0.0)),
        file_segment_bytes=8 * 1024,
    )


class TestBuild:
    def test_same_answers_as_row(self, small_table, small_workload, flat_ctx):
        irregular = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, flat_ctx
        )
        row = RowLayout().build(small_table, small_workload, flat_ctx)
        for query in small_workload:
            expected, _s = row.execute(query)
            actual, _s = irregular.execute(query)
            assert actual.equals(expected)

    def test_unseen_query_still_correct(self, small_table, small_workload, flat_ctx):
        irregular = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, flat_ctx
        )
        row = RowLayout().build(small_table, small_workload, flat_ctx)
        unseen = Query.build(
            small_table.meta, ["a6", "a1"], {"a3": (2500, 7500), "a5": (0, 8000)}
        )
        expected, _s = row.execute(unseen)
        actual, _s = irregular.execute(unseen)
        assert actual.equals(expected)

    def test_tuple_ids_stored_explicitly(self, small_table, small_workload, flat_ctx):
        irregular = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, flat_ctx
        )
        modes = [
            mode
            for pid in irregular.manager.pids()
            for mode in irregular.manager.info(pid).segment_tid_modes
        ]
        assert modes and all(mode == TID_EXPLICIT for mode in modes)

    def test_storage_includes_tuple_id_overhead(self, small_table, small_workload, flat_ctx):
        irregular = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, flat_ctx
        )
        assert irregular.storage_bytes() > small_table.sizeof()

    def test_plan_and_tuner_stats_attached(self, small_table, small_workload, flat_ctx):
        irregular = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, flat_ctx
        )
        assert irregular.plan is not None
        assert irregular.plan.kind == "irregular"
        assert irregular.build_info["tuner"].n_split_evaluations > 0


class TestColumnarFallback:
    def test_fallback_builds_column_layout(self, small_table, small_workload):
        # Huge per-request latency: the tuner must prefer the columnar layout.
        ctx = BuildContext(
            device_profile=DeviceProfile("slow", IOModel(alpha=1e-8, beta=10.0)),
            file_segment_bytes=1 << 20,
        )
        layout = IrregularLayout(selection_enabled=True).build(
            small_table, small_workload, ctx
        )
        assert layout.build_info.get("fallback") == "columnar"
        assert layout.plan.kind == "columnar"
        assert layout.n_partitions == len(small_table.schema)
        # And it still answers queries correctly.
        query = small_workload[0]
        result, _s = layout.execute(query)
        assert result.n_tuples > 0
