"""Unit tests for the Row and Column natural-order layouts."""

import numpy as np
import pytest

from repro.core import Query
from repro.layouts import BuildContext, ColumnLayout, RowLayout
from repro.storage import TID_IMPLICIT


class TestRowLayout:
    def test_partitions_are_file_segment_sized(self, small_table, small_workload, ctx):
        layout = RowLayout().build(small_table, small_workload, ctx)
        rows_per = layout.build_info["rows_per_segment"]
        assert rows_per == ctx.file_segment_bytes // small_table.schema.row_width()
        expected = int(np.ceil(small_table.n_tuples / rows_per))
        assert layout.n_partitions == expected

    def test_every_partition_stores_all_attributes(self, small_table, small_workload, ctx):
        layout = RowLayout().build(small_table, small_workload, ctx)
        for pid in layout.manager.pids():
            info = layout.manager.info(pid)
            assert info.attributes == set(small_table.schema.attribute_names)

    def test_tuple_ids_are_implicit(self, small_table, small_workload, ctx):
        layout = RowLayout().build(small_table, small_workload, ctx)
        info = layout.manager.info(0)
        assert info.segment_tid_modes == [TID_IMPLICIT]

    def test_query_reads_whole_table(self, small_table, small_workload, ctx):
        layout = RowLayout().build(small_table, small_workload, ctx)
        _result, stats = layout.execute(small_workload[0])
        assert stats.bytes_read == layout.storage_bytes()

    def test_storage_has_no_tuple_id_overhead(self, small_table, small_workload, ctx):
        layout = RowLayout().build(small_table, small_workload, ctx)
        raw = small_table.sizeof()
        overhead = layout.storage_bytes() - raw
        # only headers/bitmaps, well under 1%
        assert 0 <= overhead < raw * 0.01


class TestColumnLayout:
    def test_one_partition_per_attribute(self, small_table, small_workload, ctx):
        layout = ColumnLayout().build(small_table, small_workload, ctx)
        assert layout.n_partitions == len(small_table.schema)

    def test_query_reads_only_needed_columns(self, small_table, small_workload, ctx):
        layout = ColumnLayout().build(small_table, small_workload, ctx)
        query = small_workload[0]  # touches a1, a2, a3
        _result, stats = layout.execute(query)
        per_column = small_table.n_tuples * 4
        assert stats.bytes_read == pytest.approx(3 * per_column, rel=0.01)

    def test_column_reads_are_chunked(self, small_table, small_workload, ctx):
        layout = ColumnLayout().build(small_table, small_workload, ctx)
        query = Query.build(small_table.meta, ["a1"], {"a1": (0, 9999)})
        layout.drop_caches()
        layout.manager.device.reset_stats()
        layout.execute(query)
        column_bytes = small_table.n_tuples * 4
        expected_chunks = int(np.ceil(column_bytes / ctx.file_segment_bytes))
        assert layout.manager.device.stats.n_reads >= expected_chunks

    def test_same_answers_as_row(self, small_table, small_workload, ctx):
        row = RowLayout().build(small_table, small_workload, ctx)
        column = ColumnLayout().build(small_table, small_workload, ctx)
        for query in small_workload:
            expected, _s = row.execute(query)
            actual, _s = column.execute(query)
            assert actual.equals(expected)
