"""Unit tests for Row-H, Column-H, Row-V and Hierarchical layouts."""

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.layouts import (
    BuildContext,
    ColumnHLayout,
    HierarchicalLayout,
    RowHLayout,
    RowLayout,
    RowVLayout,
)


@pytest.fixture()
def reference(small_table, small_workload, ctx):
    return RowLayout().build(small_table, small_workload, ctx)


class TestRowH:
    def test_same_answers_as_row(self, small_table, small_workload, ctx, reference):
        layout = RowHLayout().build(small_table, small_workload, ctx)
        for query in small_workload:
            expected, _s = reference.execute(query)
            actual, _s = layout.execute(query)
            assert actual.equals(expected)

    def test_groups_cover_table(self, small_table, small_workload, ctx):
        layout = RowHLayout().build(small_table, small_workload, ctx)
        total = sum(layout.manager.info(p).n_tuples for p in layout.manager.pids())
        assert total == small_table.n_tuples


class TestColumnH:
    def test_same_answers_as_row(self, small_table, small_workload, ctx, reference):
        layout = ColumnHLayout().build(small_table, small_workload, ctx)
        for query in small_workload:
            expected, _s = reference.execute(query)
            actual, _s = layout.execute(query)
            assert actual.equals(expected)

    def test_single_attribute_per_partition(self, small_table, small_workload, ctx):
        layout = ColumnHLayout().build(small_table, small_workload, ctx)
        for pid in layout.manager.pids():
            assert len(layout.manager.info(pid).attributes) == 1

    def test_partition_count_is_groups_times_attrs(self, small_table, small_workload, ctx):
        layout = ColumnHLayout().build(small_table, small_workload, ctx)
        groups = layout.build_info["n_groups"]
        assert layout.n_partitions == groups * len(small_table.schema)


class TestRowV:
    def test_same_answers_as_row(self, small_table, small_workload, ctx, reference):
        layout = RowVLayout().build(small_table, small_workload, ctx)
        for query in small_workload:
            expected, _s = reference.execute(query)
            actual, _s = layout.execute(query)
            assert actual.equals(expected)

    def test_column_groups_follow_peloton(self, small_table, small_workload, ctx):
        layout = RowVLayout().build(small_table, small_workload, ctx)
        groups = layout.build_info["column_groups"]
        flattened = [a for g in groups for a in g]
        assert sorted(flattened) == sorted(small_table.schema.attribute_names)

    def test_reads_whole_groups(self, small_table, small_workload, ctx):
        """Row-V reads redundant attributes: the whole group containing any
        accessed attribute."""
        layout = RowVLayout().build(small_table, small_workload, ctx)
        query = small_workload[0]
        _r, stats = layout.execute(query)
        accessed_groups = [
            g for g in layout.build_info["column_groups"]
            if set(g) & query.accessed_attributes
        ]
        expected = sum(
            small_table.n_tuples * small_table.schema.row_width(g)
            for g in accessed_groups
        )
        assert stats.bytes_read == pytest.approx(expected, rel=0.01)


class TestHierarchical:
    def test_same_answers_as_row(self, small_table, small_workload, ctx, reference):
        layout = HierarchicalLayout().build(small_table, small_workload, ctx)
        for query in small_workload:
            expected, _s = reference.execute(query)
            actual, _s = layout.execute(query)
            assert actual.equals(expected)

    def test_produces_many_small_partitions(self, small_table, small_workload, ctx):
        """The paper's point: hierarchical partitioning fragments files."""
        hierarchical = HierarchicalLayout().build(small_table, small_workload, ctx)
        row_h = RowHLayout().build(small_table, small_workload, ctx)
        assert hierarchical.n_partitions >= row_h.n_partitions

    def test_vertical_split_per_group(self, small_table, small_workload, ctx):
        layout = HierarchicalLayout().build(small_table, small_workload, ctx)
        counts = layout.build_info["vertical_groups_per_partition"]
        assert len(counts) == layout.build_info["n_horizontal_groups"]
        assert all(c >= 1 for c in counts)


class TestNoWorkload:
    def test_layouts_build_with_empty_training_set(self, small_table, small_meta, ctx):
        empty = Workload(small_meta, [])
        for builder in (RowHLayout(), ColumnHLayout(), RowVLayout(), HierarchicalLayout()):
            layout = builder.build(small_table, empty, ctx)
            query = Query.build(small_meta, ["a1"], {"a1": (0, 4999)})
            result, _s = layout.execute(query)
            expected = int((small_table.column("a1") <= 4999).sum())
            assert result.n_tuples == expected
