"""Shared fixtures for the observability tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.layouts import BuildContext
from repro.testing.oracle import ORACLE_LAYOUTS, random_table, random_workload


@pytest.fixture(autouse=True)
def _reset_obs():
    """Every test starts from (and leaves behind) a clean slate: tracing
    off, metrics gate shut, registry empty — even if an earlier test file
    (e.g. the CLI profile tests) published into the shared registry."""
    obs.disable()
    obs.get_registry().clear()
    yield
    obs.disable()
    obs.get_registry().clear()


@pytest.fixture(scope="module")
def demo():
    """(table, workload, {layout_name: built layout}), seeded and small."""
    rng = np.random.default_rng(7)
    table = random_table(rng, n_attrs=4, n_tuples=300)
    workload = random_workload(rng, table, n_queries=5)
    ctx = BuildContext(file_segment_bytes=2048, schism_sample_size=100)
    layouts = {
        name: make().build(table, workload, ctx)
        for name, make in ORACLE_LAYOUTS
    }
    return table, workload, layouts
