"""Observability must not perturb the simulated accounting, at all.

Two regressions:

* the full 768-entry stats-snapshot sweep collected with observability off
  equals, entry for entry and field for field, the sweep collected with
  tracing **and** metrics fully enabled;
* the differential oracle (engine-vs-reference result identity) passes
  identically traced and untraced.
"""

from __future__ import annotations

from repro import obs
from repro.testing.oracle import run_differential_oracle
from repro.testing.snapshot import (
    SNAPSHOT_N_ENTRIES,
    STATS_SIGNATURE_FIELDS,
    collect_stats_snapshot,
)


def test_snapshot_byte_identical_traced_vs_untraced():
    baseline = collect_stats_snapshot()
    assert len(baseline) == SNAPSHOT_N_ENTRIES
    obs.enable(trace=True, metrics=True)
    try:
        traced = collect_stats_snapshot()
    finally:
        obs.disable()
    assert len(traced) == len(baseline)
    for before, after in zip(baseline, traced):
        assert before.label == after.label
        if before.signature != after.signature:
            diffs = [
                (name, a, b)
                for name, a, b in zip(
                    STATS_SIGNATURE_FIELDS, before.signature, after.signature
                )
                if a != b
            ]
            raise AssertionError(
                f"tracing perturbed accounting at {before.label}: {diffs}"
            )


def test_differential_oracle_traced_vs_untraced():
    untraced = run_differential_oracle(n_cases=6, seed=11)
    assert untraced.ok, untraced.summary()
    obs.enable(trace=True, metrics=True)
    try:
        traced = run_differential_oracle(n_cases=6, seed=11)
    finally:
        obs.disable()
    assert traced.ok, traced.summary()
    assert traced.n_cases == untraced.n_cases
    assert traced.n_checks == untraced.n_checks
    assert traced.summary() == untraced.summary()
