"""EXPLAIN ANALYZE: per-operator sums reproduce ExecutionStats exactly.

The acceptance invariant: across the full 768-entry stats-snapshot sweep
(8 tables x 8 queries x 12 executions — every oracle layout plus every
pruning twin), the simulated io and cpu times of the rows directly under
the EXPLAIN ANALYZE root sum — by left-to-right float addition, ``==`` not
approx — to the execution's ``ExecutionStats`` totals, and every additive
counter sums exactly as integers.
"""

from __future__ import annotations

import pytest

from repro.engine.parallel import ThreadedPartitionEngine
from repro.obs import explain_analyze
from repro.obs.analyze import _COUNTER_NAMES, AnalyzeNode, build_analyze_tree
from repro.testing.snapshot import (
    SNAPSHOT_N_ENTRIES,
    iter_snapshot_cases,
)


def assert_exact_sums(root: AnalyzeNode, stats) -> None:
    io_acc = 0.0
    cpu_acc = 0.0
    for child in root.children:
        io_acc += child.sim_io_s
        cpu_acc += child.sim_cpu_s
    assert io_acc == stats.io_time_s, (
        f"sim io {io_acc!r} != total {stats.io_time_s!r}"
    )
    assert cpu_acc == stats.cpu_time_s, (
        f"sim cpu {cpu_acc!r} != total {stats.cpu_time_s!r}"
    )
    assert root.sim_io_s == stats.io_time_s
    assert root.sim_cpu_s == stats.cpu_time_s
    for name in _COUNTER_NAMES:
        claimed = sum(c.counters.get(name, 0) for c in root.children)
        assert claimed == getattr(stats, name), (
            f"counter {name}: children sum {claimed} "
            f"!= total {getattr(stats, name)}"
        )


def test_exact_sums_across_768_entry_snapshot():
    """Every execution of the deterministic sweep satisfies the invariant."""
    n = 0
    for case in iter_snapshot_cases():
        _result, stats, report = explain_analyze(
            case.executor, case.query, engine=case.label
        )
        assert report.actual is stats
        assert report.analyze is not None
        assert_exact_sums(report.analyze, stats)
        n += 1
    assert n == SNAPSHOT_N_ENTRIES == 768


@pytest.mark.parametrize("strategy", ["locking", "shared"])
def test_exact_sums_threaded_engines(demo, strategy):
    """The invariant also holds for Jigsaw-L/S (per-worker ledgers)."""
    table, workload, layouts = demo
    engine = ThreadedPartitionEngine(
        layouts["irregular"].manager, table.meta, strategy=strategy,
        n_threads=4,
    )
    for query in workload.queries:
        _result, stats, report = explain_analyze(engine, query)
        assert_exact_sums(report.analyze, stats)


def test_tree_structure_and_render(demo):
    table, workload, layouts = demo
    executor = layouts["natural"].executor
    query = workload.queries[0]
    _result, stats, report = explain_analyze(executor, query, engine="scan")
    root = report.analyze
    names = [child.name for child in root.children]
    assert names[-1] == "(unattributed)"
    assert "exec.selection" in names
    assert "exec.projection" in names
    text = report.render()
    assert "analyze (per-operator actuals" in text
    assert "(unattributed)" in text
    assert "exec.query" in text
    # Every rendered row shows the sim io/cpu split.
    assert "(io " in text and "+ cpu " in text


def test_unattributed_absorbs_untraced_work(demo):
    """A span list with no operator rows pushes all totals to the
    (unattributed) row — and the sums still hold."""
    table, workload, layouts = demo
    executor = layouts["natural"].executor
    outcome = executor.execute(workload.queries[0])
    stats = outcome[1]
    root = build_analyze_tree([], stats, engine="scan")
    assert [c.name for c in root.children] == ["(unattributed)"]
    assert_exact_sums(root, stats)
