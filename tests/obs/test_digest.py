"""The mergeable log-scale quantile digest: error bounds, determinism,
merge commutativity and serialization.

The load-bearing property (hypothesis-driven): for any partition of a
sample into digests, the merged digest's quantile never under-reports and
over-reports by at most the advertised ``relative_error`` versus the exact
percentile of the concatenated sample.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileDigest


def exact_quantile(values, q: float) -> float:
    """Rank-based exact quantile matching the digest's rank convention."""
    ordered = sorted(values)
    rank = max(1, int(np.ceil(q * len(ordered))))
    return float(ordered[rank - 1])


positive_values = st.floats(
    min_value=1e-6,
    max_value=9e4,
    allow_nan=False,
    allow_infinity=False,
)


class TestBounds:
    def test_quantile_never_under_reports(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-2.0, sigma=1.5, size=2000)
        digest = QuantileDigest()
        for v in values:
            digest.observe(v)
        factor = 1.0 + digest.relative_error
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            exact = exact_quantile(values, q)
            got = digest.quantile(q)
            assert exact <= got <= exact * factor * (1 + 1e-12), (q, exact, got)

    @given(
        st.lists(positive_values, min_size=1, max_size=200),
        st.lists(positive_values, min_size=0, max_size=200),
        st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_digest_bounds_rank_error(self, left, right, q):
        a, b = QuantileDigest(), QuantileDigest()
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        merged = QuantileDigest.merged([a, b])
        assert merged.count == len(left) + len(right)
        exact = exact_quantile(left + right, q)
        got = merged.quantile(q)
        factor = 1.0 + merged.relative_error
        assert exact * (1 - 1e-12) <= got <= exact * factor * (1 + 1e-12)

    def test_merge_equals_concat_exactly(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(size=999)
        whole = QuantileDigest()
        parts = [QuantileDigest() for _ in range(3)]
        for i, v in enumerate(values):
            whole.observe(v)
            parts[i % 3].observe(v)
        assert QuantileDigest.merged(parts) == whole

    def test_empty_digest(self):
        digest = QuantileDigest()
        assert digest.count == 0
        assert digest.quantile(0.99) == 0.0
        assert digest.sum == 0.0


class TestDeterminism:
    def test_same_multiset_any_interleaving_same_digest(self):
        """Thread schedules permute observation order; the digest must not
        care (integer bucket counts and fixed-point sums commute)."""
        rng = np.random.default_rng(5)
        values = rng.lognormal(size=400).tolist()
        reference = QuantileDigest()
        for v in values:
            reference.observe(v)

        for seed in range(4):
            shuffled = list(values)
            np.random.default_rng(seed).shuffle(shuffled)
            chunks = [shuffled[i::4] for i in range(4)]
            digest = QuantileDigest()
            lock = threading.Lock()

            def feed(chunk):
                for v in chunk:
                    with lock:
                        digest.observe(v)

            threads = [
                threading.Thread(target=feed, args=(c,)) for c in chunks
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert digest == reference
            assert digest.sum == reference.sum

    def test_sum_is_fixed_point(self):
        digest = QuantileDigest(lo=1e-3)
        for v in (0.0015, 0.0024, 1.0):
            digest.observe(v)
        # each observation rounds to integer units of lo before summing
        assert digest.sum == pytest.approx((2 + 2 + 1000) * 1e-3)


class TestSerialization:
    def test_round_trip(self):
        digest = QuantileDigest(lo=1e-4, hi=1e3, bins_per_decade=16)
        rng = np.random.default_rng(9)
        for v in rng.lognormal(size=256):
            digest.observe(v)
        digest.observe(1e-9)  # underflow
        digest.observe(1e9)  # overflow
        clone = QuantileDigest.from_dict(digest.as_dict())
        assert clone == digest
        assert clone.quantiles((0.5, 0.95)) == digest.quantiles((0.5, 0.95))
        assert clone.n_underflow == digest.n_underflow
        assert clone.n_overflow == digest.n_overflow

    def test_copy_is_independent(self):
        digest = QuantileDigest()
        digest.observe(1.0)
        clone = digest.copy()
        clone.observe(2.0)
        assert digest.count == 1 and clone.count == 2


class TestValidation:
    def test_incompatible_merge_raises(self):
        with pytest.raises(ValueError):
            QuantileDigest(bins_per_decade=16).update(
                QuantileDigest(bins_per_decade=32)
            )

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            QuantileDigest().observe(float("nan"))

    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError):
            QuantileDigest().quantile(1.5)

    def test_bad_bounds_raise(self):
        with pytest.raises(ValueError):
            QuantileDigest(lo=0.0)
        with pytest.raises(ValueError):
            QuantileDigest(lo=1.0, hi=0.5)
