"""Exporters: JSONL dumps, hotspot summaries, Prometheus snapshots."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.export import dump_jsonl, hotspot_summary, top_hotspots
from repro.obs.trace import TraceCollector, Tracer


def _collector_with_spans() -> TraceCollector:
    collector = TraceCollector(capacity=64)
    tracer = Tracer(collector)
    for i in range(3):
        with tracer.span("storage.load", pid=i) as span:
            span.sim_io_s = 0.010 * (i + 1)
    with tracer.span("exec.query") as span:
        span.sim_io_s = 0.060
        span.sim_cpu_s = 0.001
    return collector


class TestJsonl:
    def test_dump_to_path(self, tmp_path):
        collector = _collector_with_spans()
        out = tmp_path / "trace.jsonl"
        n = dump_jsonl(collector, str(out))
        assert n == 4
        lines = out.read_text().splitlines()
        assert len(lines) == 4
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "storage.load"
        assert records[0]["attrs"]["pid"] == 0
        assert records[-1]["name"] == "exec.query"
        assert records[-1]["sim_io_s"] == 0.060

    def test_dump_to_file_object(self):
        collector = _collector_with_spans()
        buffer = io.StringIO()
        n = dump_jsonl(collector, buffer)
        assert n == 4
        assert len(buffer.getvalue().splitlines()) == 4

    def test_accepts_plain_span_iterable(self):
        collector = _collector_with_spans()
        buffer = io.StringIO()
        assert dump_jsonl(list(collector.spans()), buffer) == 4


class TestHotspots:
    def test_grouped_and_ranked(self):
        collector = _collector_with_spans()
        spots = top_hotspots(collector, n=10)
        assert [s.name for s in spots] == ["exec.query", "storage.load"]
        assert spots[0].count == 1
        assert spots[1].count == 3
        assert spots[1].sim_io_s == 0.010 + 0.020 + 0.030

    def test_top_n_truncates(self):
        collector = _collector_with_spans()
        assert len(top_hotspots(collector, n=1)) == 1

    def test_summary_renders_table(self):
        collector = _collector_with_spans()
        text = hotspot_summary(collector, n=5)
        assert "hotspots over 4 spans" in text
        assert "exec.query" in text
        assert "storage.load" in text


class TestPrometheusSnapshot:
    def test_render_uses_shared_registry(self):
        obs.get_registry().counter("jigsaw_test_total", "t").inc(2)
        text = obs.render_prometheus()
        assert "jigsaw_test_total 2" in text

    def test_explicit_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.gauge("g", "h").set(1)
        assert "g 1" in obs.render_prometheus(registry)
