"""The query flight recorder: capture fidelity, the query API, JSONL
spill/rotation, scheduler integration — and the acceptance bar that
recording perturbs *nothing* in the simulated accounting.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.flight import (
    FLIGHT_CONTEXT,
    FlightRecord,
    FlightRecorder,
    flight_recorder,
    install_flight_recorder,
    load_flight_history,
    uninstall_flight_recorder,
)
from repro.serve import AdmissionRejected, QueryScheduler
from repro.storage.blob import MemoryBlobStore
from repro.testing.snapshot import (
    SNAPSHOT_N_ENTRIES,
    collect_stats_snapshot,
)


@pytest.fixture(autouse=True)
def _no_leftover_recorder():
    uninstall_flight_recorder()
    yield
    uninstall_flight_recorder()


def make_record(seq: int, **overrides) -> FlightRecord:
    record = FlightRecord(seq=seq, ts_unix_s=float(seq), engine="scan")
    for key, value in overrides.items():
        setattr(record, key, value)
    return record


class TestCapture:
    def test_engine_hook_records_direct_execution(self, demo):
        table, workload, layouts = demo
        recorder = install_flight_recorder(FlightRecorder())
        layout = layouts["irregular"]
        query = workload.queries[0]
        outcome = layout.executor.execute(query)
        stats = (
            outcome[1]
            if isinstance(outcome, tuple)
            else layout.executor.last_stats
        )
        assert recorder.n_recorded == 1
        (record,) = recorder.records()
        assert record.engine
        assert record.label == query.label
        assert record.outcome == "ok"
        assert record.table == layout.manager.key_prefix
        assert record.wall_time_s == stats.wall_time_s
        assert record.latency_s == stats.wall_time_s  # no scheduler
        assert record.bytes_read == stats.bytes_read
        assert record.n_partition_reads == stats.n_partition_reads
        assert record.catalog_version == layout.manager.catalog_version
        assert record.priority == ""  # not a serving-tier request

    def test_records_without_metrics_enabled(self, demo):
        """The flight log is independent of the metrics gate."""
        _table, workload, layouts = demo
        assert not obs.metrics_enabled()
        recorder = install_flight_recorder(FlightRecorder())
        layouts["natural"].executor.execute(workload.queries[0])
        assert recorder.n_recorded == 1

    def test_ring_is_bounded(self, demo):
        _table, workload, layouts = demo
        recorder = install_flight_recorder(FlightRecorder(capacity=8))
        executor = layouts["natural"].executor
        for _ in range(4):
            for query in workload.queries:
                executor.execute(query)
        assert recorder.n_recorded == 20
        assert len(recorder) == 8
        # the ring keeps the newest records
        assert [r.seq for r in recorder.records()] == list(range(12, 20))

    def test_install_replaces_and_closes_previous(self):
        first = install_flight_recorder(FlightRecorder())
        second = install_flight_recorder(FlightRecorder())
        assert flight_recorder() is second
        assert first._closed
        uninstall_flight_recorder()
        assert flight_recorder() is None
        assert second._closed


class TestQueryApi:
    @pytest.fixture()
    def recorder(self) -> FlightRecorder:
        recorder = FlightRecorder(slow_query_s=0.5, capture_explain=False)
        latencies = [0.1, 0.2, 0.9, 0.4, 1.5, 0.3]
        engines = ["scan", "scan", "jigsaw-l", "jigsaw-l", "scan", "scan"]
        outcomes = ["ok", "ok", "ok", "error", "ok", "ok"]
        for i, (latency, engine, outcome) in enumerate(
            zip(latencies, engines, outcomes)
        ):
            recorder._finish(
                make_record(i, engine=engine),
                latency_s=latency,
                queue_wait_s=0.0,
                outcome=outcome,
            )
        return recorder

    def test_filters(self, recorder):
        assert len(recorder.records()) == 6
        assert len(recorder.records(engine="scan")) == 4
        assert len(recorder.records(outcome="error")) == 1
        assert len(recorder.records(slow=True)) == 2
        assert [r.seq for r in recorder.records(n=2)] == [4, 5]
        assert len(recorder.records(since_unix_s=3.0)) == 3

    def test_top_n(self, recorder):
        worst = recorder.top_n(2)
        assert [r.seq for r in worst] == [4, 2]
        assert worst[0].latency_s == 1.5

    def test_percentile_and_summary(self, recorder):
        assert recorder.percentile(0.5) == 0.3
        assert recorder.percentile(1.0) == 1.5
        assert recorder.percentile(0.5, engine="scan") == 0.2
        summary = recorder.summary()
        assert summary["n_recorded"] == 6
        assert summary["n_slow"] == 2
        assert summary["n_errors"] == 1
        assert summary["by_engine"] == {"scan": 4, "jigsaw-l": 2}
        assert summary["latency_p99_s"] == 1.5

    def test_slow_queries(self, recorder):
        assert [r.seq for r in recorder.slow_queries()] == [2, 4]

    def test_record_round_trip(self, recorder):
        for record in recorder.records():
            clone = FlightRecord.from_dict(
                json.loads(json.dumps(record.as_dict()))
            )
            assert clone == record


class TestSpill:
    def test_spill_rotation_and_reload(self):
        store = MemoryBlobStore()
        with FlightRecorder(
            capacity=64,
            store=store,
            key_prefix="flight/",
            spill_every=4,
            max_spill_blobs=3,
        ) as recorder:
            for i in range(22):
                recorder._finish(
                    make_record(i), latency_s=0.01 * i, queue_wait_s=0.0
                )
        # 5 full blocks of 4 spilled, the tail of 2 flushed on close,
        # rotation keeps only the newest 3 blobs.
        assert recorder.n_spilled == 22
        keys = [k for k in store.keys() if k.startswith("flight/")]
        assert len(keys) == 3
        history = load_flight_history(store)
        assert [r.seq for r in history] == list(range(12, 22))
        assert history[-1].latency_s == pytest.approx(0.21)

    def test_flush_is_idempotent(self):
        store = MemoryBlobStore()
        recorder = FlightRecorder(store=store, spill_every=100)
        recorder._finish(make_record(0), latency_s=0.0, queue_wait_s=0.0)
        recorder.flush()
        recorder.flush()
        recorder.close()
        recorder.close()
        assert len(load_flight_history(store)) == 1


class TestSchedulerIntegration:
    def test_serving_facts_and_slow_explain(self, demo):
        _table, workload, layouts = demo
        recorder = install_flight_recorder(
            FlightRecorder(slow_query_s=0.0)  # everything is "slow"
        )
        layout = layouts["irregular"]
        scheduler = QueryScheduler(
            {"irregular": layout.executor}, workers=2, queue_depth=16
        )
        with scheduler:
            tickets = [
                scheduler.submit("irregular", q, priority="high")
                for q in workload.queries
            ]
            for ticket in tickets:
                ticket.wait(timeout=30)
        records = recorder.records()
        assert len(records) == len(workload.queries)
        for record in records:
            assert record.outcome == "ok"
            assert record.priority == "high"
            assert record.slow
            # the scheduler's wall clock, not the engine's
            assert record.latency_s >= record.wall_time_s
            assert record.queue_wait_s >= 0.0
            assert record.wal_lsn == -1  # no WAL wired in
            # the slow-query log kept the full EXPLAIN ANALYZE tree
            assert "exec.query" in record.explain
            assert "sim" in record.explain
        assert recorder.n_slow == len(workload.queries)
        assert FLIGHT_CONTEXT.get() is None

    def test_scheduler_does_not_steal_client_scoped_trace(self, demo):
        """A client running its own scoped_trace must keep its spans even
        when the slow-query log wants them too (PR7 contract)."""
        _table, workload, layouts = demo
        install_flight_recorder(FlightRecorder(slow_query_s=0.0))
        layout = layouts["natural"]
        scheduler = QueryScheduler(
            {"natural": layout.executor}, workers=1, queue_depth=8
        )
        with scheduler:
            with obs.scoped_trace() as collector:
                scheduler.execute("natural", workload.queries[0])
        names = {span.name for span in collector.spans()}
        assert "serve.request" in names
        assert "exec.query" in names

    def test_rejections_are_recorded(self, demo):
        _table, workload, layouts = demo
        recorder = install_flight_recorder(FlightRecorder())
        scheduler = QueryScheduler(
            {"natural": layouts["natural"].executor}, workers=1
        )
        with scheduler:
            with pytest.raises(AdmissionRejected):
                scheduler.submit("nonexistent", workload.queries[0])
        assert recorder.n_rejections == 1
        (record,) = recorder.records(outcome="rejected")
        assert record.engine == "nonexistent"
        assert "unknown engine" in record.error
        assert record.latency_s == 0.0

    def test_wal_lsn_stamped_via_provider(self, demo):
        _table, workload, layouts = demo
        recorder = install_flight_recorder(
            FlightRecorder(lsn_provider=lambda: 41)
        )
        scheduler = QueryScheduler(
            {"natural": layouts["natural"].executor}, workers=1
        )
        with scheduler:
            scheduler.execute("natural", workload.queries[0])
        (record,) = recorder.records()
        assert record.wal_lsn == 41
        assert recorder.current_lsn() == 41


class TestDigestAgainstExactRecords:
    def test_live_summary_p95_within_rank_error_of_flight_log(self, demo):
        """The streaming serve-latency digest must agree with the exact
        per-query flight records to within its advertised rank-error."""
        _table, workload, layouts = demo
        obs.enable(trace=False, metrics=True)
        recorder = install_flight_recorder(FlightRecorder(capacity=8192))
        layout = layouts["natural"]
        scheduler = QueryScheduler(
            {"natural": layout.executor}, workers=2, queue_depth=64
        )
        with scheduler:
            for _round in range(8):
                tickets = [
                    scheduler.submit("natural", q) for q in workload.queries
                ]
                for ticket in tickets:
                    ticket.wait(timeout=30)
        summary = obs.get_registry().get("jigsaw_serve_latency_quantiles")
        digest = summary.merged_digest()
        assert digest.count == recorder.n_recorded == 8 * len(
            workload.queries
        )
        for q in (0.5, 0.95, 0.99):
            exact = recorder.percentile(q)
            streamed = digest.quantile(q)
            factor = 1.0 + digest.relative_error
            assert exact <= streamed <= exact * factor * (1 + 1e-12), (
                q, exact, streamed,
            )


class TestAccountingIdentity:
    def test_snapshot_bit_identical_recorder_on_vs_off(self):
        """The acceptance bar: the full stats-snapshot sweep is signature-
        identical with the recorder (slow log included) on and off."""
        baseline = collect_stats_snapshot()
        assert len(baseline) == SNAPSHOT_N_ENTRIES
        recorder = install_flight_recorder(FlightRecorder(slow_query_s=0.0))
        try:
            recorded = collect_stats_snapshot()
        finally:
            uninstall_flight_recorder()
        assert recorder.n_recorded == SNAPSHOT_N_ENTRIES
        for before, after in zip(baseline, recorded):
            assert before.label == after.label
            assert before.signature == after.signature
