"""The declarative health-rule engine — and the acceptance scenario: a
deliberately stalled compaction drives the WAL-backlog rule to CRIT, and
``run_until_clean`` (which checkpoints the WAL) brings it back to OK.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.health import (
    CRIT,
    OK,
    WARN,
    HealthMonitor,
    HealthRule,
    MetricValue,
    Ratio,
    default_rules,
)
from repro.obs.metrics import MetricsRegistry
from repro.layouts import BuildContext, IrregularLayout
from repro.testing import (
    ShadowTable,
    WriteWorkloadConfig,
    apply_random_batch,
    random_table,
    random_workload,
)
from repro.txn import DeltaCompactor, TransactionalTable


def build_txn_table(seed: int = 7, wal_enabled: bool = True):
    """A small seeded transactional layout (mirrors the txn suite's)."""
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_attrs=3, n_tuples=300)
    train = random_workload(rng, table, 4)
    layout = IrregularLayout().build(
        table, train, BuildContext(file_segment_bytes=2048)
    )
    return table, layout, TransactionalTable(
        layout, table, wal_enabled=wal_enabled
    )


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestMetricValue:
    def test_absent_metric_reads_none(self, registry):
        assert MetricValue("nope").read(registry) is None

    def test_sum_max_min_over_series(self, registry):
        gauge = registry.gauge("g", "doc", ("shard",))
        gauge.set(3, shard="a")
        gauge.set(5, shard="b")
        assert MetricValue("g").read(registry) == 8.0
        assert MetricValue("g", agg="max").read(registry) == 5.0
        assert MetricValue("g", agg="min").read(registry) == 3.0

    def test_label_filter_matches_one_series(self, registry):
        gauge = registry.gauge("g", "doc", ("shard",))
        gauge.set(3, shard="a")
        gauge.set(5, shard="b")
        value = MetricValue("g", labels={"shard": "b"})
        assert value.read(registry) == 5.0

    def test_summary_percentile(self, registry):
        summary = registry.summary("s", "doc")
        for v in np.linspace(0.01, 1.0, 100):
            summary.observe(float(v))
        p99 = MetricValue("s", agg="p99").read(registry)
        assert p99 is not None
        assert p99 >= 0.99  # digest never under-reports


class TestRatio:
    def test_traffic_guard(self, registry):
        hits = registry.counter("hits", "doc")
        misses = registry.counter("misses", "doc")
        ratio = Ratio(
            MetricValue("hits"),
            (MetricValue("hits"), MetricValue("misses")),
            min_den=10,
        )
        hits.inc(3)
        misses.inc(1)
        assert ratio.read(registry) is None  # only 4 lookups: below min_den
        misses.inc(6)
        assert ratio.read(registry) == pytest.approx(0.3)

    def test_missing_denominator_is_none(self, registry):
        ratio = Ratio(MetricValue("a"), MetricValue("b"))
        assert ratio.read(registry) is None


class TestHealthRule:
    def test_threshold_directions(self, registry):
        registry.gauge("g", "doc").set(50)
        rule = HealthRule("r", MetricValue("g"), warn=10, crit=100)
        assert rule.evaluate(registry).status == WARN
        registry.gauge("g", "doc").set(100)
        assert rule.evaluate(registry).status == CRIT
        registry.gauge("g", "doc").set(9)
        assert rule.evaluate(registry).status == OK

    def test_lower_is_violation(self, registry):
        registry.gauge("rate", "doc").set(0.2)
        rule = HealthRule(
            "r", MetricValue("rate"), warn=0.5, crit=0.1, op="<="
        )
        assert rule.evaluate(registry).status == WARN
        registry.gauge("rate", "doc").set(0.05)
        assert rule.evaluate(registry).status == CRIT

    def test_unknown_value_is_ok(self, registry):
        rule = HealthRule("r", MetricValue("absent"), warn=1, crit=2)
        result = rule.evaluate(registry)
        assert result.status == OK and result.observed is None

    def test_inverted_thresholds_raise(self):
        with pytest.raises(ValueError):
            HealthRule("r", MetricValue("g"), warn=5, crit=1)
        with pytest.raises(ValueError):
            HealthRule("r", MetricValue("g"), warn=1, crit=5, op="<=")
        with pytest.raises(ValueError):
            HealthRule("r", MetricValue("g"), warn=1, crit=5, op="==")


class TestMonitor:
    def test_worst_of_and_exit_codes(self, registry):
        registry.gauge("a", "doc").set(5)
        registry.gauge("b", "doc").set(500)
        monitor = HealthMonitor(
            registry,
            rules=[
                HealthRule("a", MetricValue("a"), warn=10, crit=100),
                HealthRule("b", MetricValue("b"), warn=10, crit=100),
            ],
        )
        report = monitor.evaluate()
        assert report.status == CRIT
        assert report.exit_code == 2
        assert [r.name for r in report.failing()] == ["b"]
        assert "CRIT" in report.render()
        payload = report.as_dict()
        assert payload["status"] == CRIT
        assert len(payload["results"]) == 2

    def test_default_rules_overrides(self):
        rules = {r.name: r for r in default_rules()}
        assert "wal_backlog_bytes" in rules
        assert "admission_rejection_rate" in rules
        tightened = {
            r.name: r
            for r in default_rules(overrides={"delta_segments": (1, 2)})
        }
        assert tightened["delta_segments"].warn == 1
        assert tightened["delta_segments"].crit == 2
        # untouched rules keep their stock thresholds
        assert (
            tightened["wal_backlog_bytes"].warn
            == rules["wal_backlog_bytes"].warn
        )

    def test_empty_registry_is_ok(self, registry):
        report = HealthMonitor(registry).evaluate()
        assert report.status == OK and report.exit_code == 0


class TestStalledCompactionScenario:
    def test_wal_backlog_crit_then_ok_after_run_until_clean(self):
        """Commits without compaction grow the WAL backlog past a (tightened)
        CRIT threshold; ``run_until_clean`` folds the deltas, truncates the
        WAL at the checkpoint and republishes — health returns to OK."""
        obs.enable(trace=False, metrics=True)
        _table, _layout, txn = build_txn_table(seed=23, wal_enabled=True)
        monitor = HealthMonitor(
            rules=default_rules(
                overrides={"wal_backlog_bytes": (1.0, 64.0)}
            )
        )

        shadow = ShadowTable(txn.data)
        shadow.snapshot(txn.current_version)
        rng = np.random.default_rng(23)
        config = WriteWorkloadConfig()
        for _ in range(4):  # compaction deliberately stalled: no compactor
            apply_random_batch(txn, shadow, rng, config)
            shadow.snapshot(txn.commit())

        assert txn.wal.backlog_bytes > 64
        report = monitor.evaluate()
        assert report.status == CRIT
        failing = {r.name for r in report.failing()}
        assert "wal_backlog_bytes" in failing

        reports = DeltaCompactor(txn, verify=True).run_until_clean()
        assert reports and reports[-1].wal_truncated
        assert txn.wal.backlog_bytes == 0
        # the compactor republished right after the fold: no extra commit
        # is needed for /healthz to see the checkpoint
        report = monitor.evaluate()
        assert report.status == OK
        assert report.exit_code == 0
