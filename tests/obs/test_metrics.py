"""Metrics registry: counters, gauges, histograms, Prometheus rendering."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_labels(self, registry):
        c = registry.counter("q_total", "queries", label_names=("engine",))
        c.inc(engine="scan")
        c.inc(2, engine="scan")
        c.inc(engine="jigsaw-l")
        assert c.value(engine="scan") == 3
        assert c.value(engine="jigsaw-l") == 1

    def test_negative_rejected(self, registry):
        c = registry.counter("c", "h")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_unlabeled(self, registry):
        c = registry.counter("plain", "h")
        c.inc(5)
        assert c.value() == 5

    def test_label_shape_enforced(self, registry):
        c = registry.counter("lab", "h", label_names=("engine",))
        with pytest.raises(ValueError):
            c.inc(1)  # missing the label
        with pytest.raises(ValueError):
            c.inc(1, engine="x", extra="y")


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("g", "h")
        g.set(2.5)
        g.inc(0.5)
        assert g.value() == 3.0
        g.set(-1.0)  # gauges may go negative
        assert g.value() == -1.0


class TestHistogram:
    def test_observe_buckets_sum_count(self, registry):
        h = registry.histogram("lat", "h", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_render_cumulative_le(self, registry):
        h = registry.histogram("lat", "h", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text


class TestRegistry:
    def test_kind_conflict_raises(self, registry):
        registry.counter("x", "h")
        with pytest.raises(ValueError):
            registry.gauge("x", "h")

    def test_label_conflict_raises(self, registry):
        registry.counter("x", "h", label_names=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", "h", label_names=("b",))

    def test_same_spec_returns_same_metric(self, registry):
        a = registry.counter("x", "h", label_names=("a",))
        b = registry.counter("x", "h", label_names=("a",))
        assert a is b

    def test_render_prometheus_format(self, registry):
        c = registry.counter("q_total", "queries executed", label_names=("engine",))
        c.inc(3, engine="scan")
        registry.gauge("depth", "pool depth").set(7)
        text = registry.render_prometheus()
        assert "# HELP q_total queries executed" in text
        assert "# TYPE q_total counter" in text
        assert 'q_total{engine="scan"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text

    def test_clear(self, registry):
        registry.counter("x", "h").inc()
        registry.clear()
        assert registry.names() == ()
