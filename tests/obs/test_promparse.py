"""The in-tree Prometheus text-exposition parser, and the conformance of
our own renderer against it.

Two directions:

* everything ``MetricsRegistry.render_prometheus`` emits must parse — with
  hostile label values (backslashes, quotes, newlines) surviving the
  escape/unescape round trip bit-exactly;
* hand-written violations of the format (duplicate HELP, interleaved
  families, broken histogram invariants, bad escapes) must raise
  :class:`ExpositionError` with the offending line number.
"""

from __future__ import annotations

import pytest

from repro.obs import ExpositionError, parse_exposition
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestRendererConformance:
    def test_full_registry_round_trip(self, registry):
        counter = registry.counter(
            "jigsaw_reads_total", "Partition reads.", ("engine",)
        )
        counter.inc(3, engine="scan")
        counter.inc(1, engine="jigsaw-l")
        registry.gauge("jigsaw_pool_bytes", "Resident bytes.").set(4096)
        histogram = registry.histogram(
            "jigsaw_latency_s", "Latency.", buckets=(0.1, 1.0)
        )
        for v in (0.05, 0.5, 5.0):
            histogram.observe(v)
        summary = registry.summary(
            "jigsaw_wait_s", "Queue wait.", ("priority",)
        )
        summary.observe(0.25, priority="high")

        families = parse_exposition(registry.render_prometheus())
        assert families["jigsaw_reads_total"].kind == "counter"
        assert families["jigsaw_reads_total"].value(engine="scan") == 3.0
        assert families["jigsaw_pool_bytes"].value() == 4096.0
        assert families["jigsaw_latency_s"].value("_count") == 3.0
        assert families["jigsaw_latency_s"].value("_bucket", le="+Inf") == 3.0
        assert families["jigsaw_wait_s"].value("_count", priority="high") == 1.0

    def test_hostile_label_values_round_trip(self, registry):
        hostile = ['a"b\\c', "x\ny", "\\", 'plain', '"\n\\"']
        gauge = registry.gauge("jigsaw_hostile", "Escaping.", ("q",))
        for i, value in enumerate(hostile):
            gauge.set(float(i), q=value)
        families = parse_exposition(registry.render_prometheus())
        for i, value in enumerate(hostile):
            assert families["jigsaw_hostile"].value(q=value) == float(i)

    def test_help_text_escaped(self, registry):
        registry.gauge("jigsaw_h", "multi\nline \\ help").set(1)
        families = parse_exposition(registry.render_prometheus())
        assert families["jigsaw_h"].help_text == "multi\nline \\ help"


class TestViolations:
    def parse_lines(self, *lines: str):
        return parse_exposition("\n".join(lines) + "\n")

    def err(self, *lines: str) -> ExpositionError:
        with pytest.raises(ExpositionError) as info:
            self.parse_lines(*lines)
        return info.value

    def test_duplicate_help(self):
        err = self.err(
            "# HELP m one",
            "# HELP m two",
            "# TYPE m gauge",
            "m 1",
        )
        assert err.line_no == 2

    def test_duplicate_type(self):
        self.err("# TYPE m gauge", "# TYPE m gauge", "m 1")

    def test_help_after_samples(self):
        self.err("# TYPE m gauge", "m 1", "# HELP m late")

    def test_interleaved_families(self):
        self.err(
            "# TYPE a gauge", "a 1",
            "# TYPE b gauge", "b 1",
            "a 2",
        )

    def test_bad_metric_name(self):
        self.err("9bad 1")

    def test_bad_label_escape(self):
        self.err('m{l="a\\qb"} 1')

    def test_unterminated_label_value(self):
        self.err('m{l="open} 1')

    def test_duplicate_label_name(self):
        self.err('m{l="1",l="2"} 1')

    def test_bad_value(self):
        self.err("m notanumber")

    def test_histogram_without_inf_bucket(self):
        self.err(
            "# TYPE h histogram",
            'h_bucket{le="1.0"} 2',
            "h_sum 2.0",
            "h_count 2",
        )

    def test_histogram_non_monotone(self):
        self.err(
            "# TYPE h histogram",
            'h_bucket{le="1.0"} 3',
            'h_bucket{le="2.0"} 2',
            'h_bucket{le="+Inf"} 3',
            "h_sum 2.0",
            "h_count 3",
        )

    def test_histogram_inf_count_mismatch(self):
        self.err(
            "# TYPE h histogram",
            'h_bucket{le="1.0"} 2',
            'h_bucket{le="+Inf"} 2',
            "h_sum 2.0",
            "h_count 3",
        )

    def test_valid_minimal_exposition_parses(self):
        families = self.parse_lines(
            "# HELP m doc",
            "# TYPE m counter",
            "m 4",
            "# TYPE h histogram",
            'h_bucket{le="+Inf"} 1',
            "h_sum 0.5",
            "h_count 1",
        )
        assert families["m"].value() == 4.0
        assert families["h"].value("_sum") == 0.5

    def test_inf_and_nan_values(self):
        families = self.parse_lines("m +Inf", "n NaN")
        assert families["m"].value() == float("inf")
