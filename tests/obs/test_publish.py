"""Publication bridge: stats dataclasses -> metrics registry, gated."""

from __future__ import annotations

from repro import obs
from repro.adaptive.daemon import AdaptationStats
from repro.plan.stats import ExecutionStats
from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import FaultStats


class TestGate:
    def test_record_query_noop_when_disabled(self):
        assert not obs.metrics_enabled()
        obs.record_query("scan", None, ExecutionStats(bytes_read=10))
        assert obs.get_registry().names() == ()

    def test_publishers_noop_when_disabled(self):
        obs.publish_buffer_pool(BufferPool(1024))
        obs.publish_fault_stats(FaultStats())
        obs.publish_adaptation(AdaptationStats())
        assert obs.get_registry().names() == ()


class TestRecordQuery:
    def test_publishes_per_engine_counters(self):
        obs.enable(trace=False, metrics=True)
        stats = ExecutionStats(
            bytes_read=100, io_time_s=0.5, n_partition_reads=2,
            cells_scanned=40, cpu_time_s=0.001,
        )
        obs.record_query("scan", None, stats)
        obs.record_query("scan", None, stats)
        registry = obs.get_registry()
        assert registry.get("jigsaw_queries_total").value(engine="scan") == 2
        assert (
            registry.get("jigsaw_query_bytes_read_total").value(engine="scan")
            == 200
        )
        assert (
            registry.get("jigsaw_query_sim_seconds").count(engine="scan") == 2
        )
        # No plan -> no cost-model series.
        assert registry.get("jigsaw_cost_model_drift_ratio") is None

    def test_cost_model_drift_from_plan(self):
        obs.enable(trace=False, metrics=True)

        class FakePlan:
            estimated_bytes = 150

        stats = ExecutionStats(bytes_read=100)
        obs.record_query("scan", FakePlan(), stats)
        registry = obs.get_registry()
        assert (
            registry.get("jigsaw_cost_model_estimated_bytes").value(
                engine="scan"
            )
            == 150
        )
        assert (
            registry.get("jigsaw_cost_model_observed_bytes").value(
                engine="scan"
            )
            == 100
        )
        assert registry.get("jigsaw_cost_model_drift_ratio").value(
            engine="scan"
        ) == 1.5
        assert (
            registry.get("jigsaw_cost_model_abs_error_bytes_total").value(
                engine="scan"
            )
            == 50
        )


class TestSubsystemPublishers:
    def test_buffer_pool_gauges(self):
        obs.enable(trace=False, metrics=True)
        obs.publish_buffer_pool(BufferPool(1024), name="p0")
        registry = obs.get_registry()
        assert registry.get("jigsaw_pool_n_hits").value(pool="p0") == 0
        assert registry.get("jigsaw_pool_current_bytes").value(pool="p0") == 0

    def test_fault_stats_gauges(self):
        obs.enable(trace=False, metrics=True)
        obs.publish_fault_stats(
            FaultStats(n_gets=9, n_transient_errors=2, latency_injected_s=0.25)
        )
        registry = obs.get_registry()
        assert registry.get("jigsaw_faults_n_gets").value() == 9
        assert registry.get("jigsaw_faults_n_transient_errors").value() == 2
        assert (
            registry.get("jigsaw_faults_latency_injected_seconds").value()
            == 0.25
        )

    def test_adaptation_gauges_and_outcomes(self):
        obs.enable(trace=False, metrics=True)
        stats = AdaptationStats(n_cycles=3, n_migrations=1, drift_score=0.7)
        obs.publish_adaptation(stats, cycle_outcome="migrated")
        obs.publish_adaptation(stats, cycle_outcome="skipped")
        obs.publish_adaptation(stats)  # no outcome: gauges only
        registry = obs.get_registry()
        assert registry.get("jigsaw_adaptive_n_cycles").value() == 3
        outcomes = registry.get("jigsaw_adaptive_cycle_outcomes_total")
        assert outcomes.value(outcome="migrated") == 1
        assert outcomes.value(outcome="skipped") == 1


class TestEndToEnd:
    def test_engines_publish_during_execution(self, demo):
        table, workload, layouts = demo
        obs.enable(trace=False, metrics=True)
        for name, layout in layouts.items():
            layout.executor.execute(workload.queries[0])
        registry = obs.get_registry()
        queries = registry.get("jigsaw_queries_total")
        assert queries is not None
        total = sum(queries.series().values())
        # Four layouts -> at least four queries (replicated may fall back
        # through the standard engine, which still publishes exactly once).
        assert total >= len(layouts)
        assert registry.get("jigsaw_query_sim_seconds") is not None
