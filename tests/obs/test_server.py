"""The live telemetry HTTP endpoint: routing, content types, health
status codes, and clean (idempotent, non-leaking) shutdown.

The autouse ``no_thread_leaks`` fixture in the suite-wide conftest is part
of the contract here: every test must leave no non-daemon thread behind,
so ``TelemetryServer.close`` has to actually stop and join its serving
thread.
"""

from __future__ import annotations

import json
import threading
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs import parse_exposition
from repro.obs.flight import FlightRecorder
from repro.obs.health import HealthMonitor, HealthRule, MetricValue
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer


def get_json(url: str):
    try:
        with urlopen(url, timeout=10) as resp:
            return json.loads(resp.read().decode("utf-8")), resp.status
    except HTTPError as err:
        return json.loads(err.read().decode("utf-8")), err.code


@pytest.fixture()
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.gauge("jigsaw_demo_gauge", "Demo.", ("shard",)).set(7, shard="a")
    return registry


@pytest.fixture()
def server(registry):
    recorder = FlightRecorder(slow_query_s=1.0)
    recorder._finish(
        _record(0, engine="scan"), latency_s=0.2, queue_wait_s=0.0
    )
    recorder._finish(
        _record(1, engine="jigsaw-l"), latency_s=2.0, queue_wait_s=0.1
    )
    with TelemetryServer(
        registry=registry, recorder=recorder, port=0
    ) as server:
        yield server
    recorder.close()


def _record(seq: int, engine: str):
    from repro.obs.flight import FlightRecord

    return FlightRecord(seq=seq, ts_unix_s=float(seq), engine=engine)


class TestRoutes:
    def test_metrics_parses_with_content_type(self, server):
        with urlopen(server.url + "/metrics", timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            families = parse_exposition(resp.read().decode("utf-8"))
        assert families["jigsaw_demo_gauge"].value(shard="a") == 7.0

    def test_healthz_ok(self, server):
        payload, status = get_json(server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_queries_with_filters(self, server):
        payload, status = get_json(server.url + "/queries")
        assert status == 200
        assert payload["summary"]["n_recorded"] == 2
        assert len(payload["records"]) == 2

        payload, _ = get_json(server.url + "/queries?engine=scan")
        assert [r["engine"] for r in payload["records"]] == ["scan"]
        payload, _ = get_json(server.url + "/queries?slow=1")
        assert [r["seq"] for r in payload["records"]] == [1]
        payload, _ = get_json(server.url + "/queries?n=1")
        assert len(payload["records"]) == 1

    def test_hotspots(self, server):
        payload, status = get_json(server.url + "/hotspots")
        assert status == 200
        assert "hotspots" in payload

    def test_index_lists_routes(self, server):
        payload, status = get_json(server.url + "/")
        assert status == 200
        assert "/metrics" in payload["routes"]

    def test_unknown_route_is_404(self, server):
        _payload, status = get_json(server.url + "/nope")
        assert status == 404


class TestHealthStatusCode:
    def test_healthz_503_on_crit(self, registry):
        registry.gauge("backlog", "doc").set(1e9)
        monitor = HealthMonitor(
            registry,
            rules=[HealthRule("backlog", MetricValue("backlog"), 10, 100)],
        )
        with TelemetryServer(
            registry=registry, monitor=monitor, port=0
        ) as server:
            payload, status = get_json(server.url + "/healthz")
        assert status == 503
        assert payload["status"] == "crit"
        assert payload["results"][0]["name"] == "backlog"


class TestLifecycle:
    def test_ephemeral_port_and_url(self, registry):
        server = TelemetryServer(registry=registry, port=0)
        server.start()
        try:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.close()

    def test_close_is_idempotent_and_joins_thread(self, registry):
        server = TelemetryServer(registry=registry, port=0)
        server.start()
        name = "jigsaw-telemetry"
        assert any(t.name == name for t in threading.enumerate())
        server.close()
        server.close()
        assert not any(
            t.name == name and t.is_alive() for t in threading.enumerate()
        )

    def test_start_twice_is_single_server(self, registry):
        server = TelemetryServer(registry=registry, port=0)
        try:
            server.start()
            port = server.port
            server.start()
            assert server.port == port
        finally:
            server.close()

    def test_server_error_surfaces_as_500(self, registry):
        class Broken:
            def summary(self):
                raise RuntimeError("boom")

            def records(self, **kwargs):
                return []

        with TelemetryServer(
            registry=registry, recorder=Broken(), port=0
        ) as server:
            payload, status = get_json(server.url + "/queries")
        assert status == 500
        assert "error" in payload
