"""Tracer, span nesting (including across engine threads), ring buffer."""

from __future__ import annotations

import pytest

from repro import obs
from repro.engine.parallel import ThreadedPartitionEngine
from repro.obs.trace import NOOP_TRACER, Span, TraceCollector, Tracer
from repro.plan.stats import CpuModel, ExecutionStats


class TestCollector:
    def test_collects_in_order(self):
        collector = TraceCollector(capacity=16)
        tracer = Tracer(collector)
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        spans = collector.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # close order
        outer = spans[1]
        inner = spans[0]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.attrs["k"] == 1
        assert outer.wall_s >= inner.wall_s >= 0.0

    def test_ring_drops_oldest(self):
        collector = TraceCollector(capacity=4)
        tracer = Tracer(collector)
        for i in range(10):
            with tracer.span("s", i=i):
                pass
        assert len(collector) == 4
        assert collector.n_dropped == 6
        assert [s.attrs["i"] for s in collector.spans()] == [6, 7, 8, 9]

    def test_clear(self):
        collector = TraceCollector(capacity=4)
        tracer = Tracer(collector)
        with tracer.span("s"):
            pass
        collector.clear()
        assert len(collector) == 0

    def test_event_is_zero_duration(self):
        collector = TraceCollector(capacity=4)
        tracer = Tracer(collector)
        tracer.event("pool.evict", pid=3)
        (span,) = collector.spans()
        assert span.wall_s == 0.0
        assert span.attrs["pid"] == 3

    def test_error_annotated(self):
        collector = TraceCollector(capacity=4)
        tracer = Tracer(collector)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = collector.spans()
        assert span.attrs["error"] == "ValueError"


class TestPhase:
    def test_phase_snapshots_stats_delta(self):
        collector = TraceCollector(capacity=4)
        tracer = Tracer(collector)
        stats = ExecutionStats()
        stats.bytes_read = 100
        with tracer.phase("p", stats, cpu_model=CpuModel()):
            stats.bytes_read += 50
            stats.io_time_s += 0.25
            stats.cells_scanned += 7
        (span,) = collector.spans()
        assert span.attrs["bytes_read"] == 50
        assert span.attrs["cells_scanned"] == 7
        assert span.sim_io_s == 0.25
        assert span.sim_cpu_s == CpuModel().cpu_time(
            cells_scanned=7, cells_gathered=0, hash_inserts=0,
            hash_updates=0, materialized_bytes=0, tuples_iterated=0,
        )

    def test_phase_sums_multiple_ledgers(self):
        collector = TraceCollector(capacity=4)
        tracer = Tracer(collector)
        a, b = ExecutionStats(), ExecutionStats()
        with tracer.phase("p", [a, b]):
            a.bytes_read += 5
            b.bytes_read += 7
        (span,) = collector.spans()
        assert span.attrs["bytes_read"] == 12
        assert span.sim_cpu_s == 0.0  # no cpu model given


class TestNoop:
    def test_default_tracer_is_noop(self):
        assert obs.tracer() is NOOP_TRACER
        assert not obs.tracing_enabled()

    def test_noop_span_discards_everything(self):
        tracer = NOOP_TRACER
        with tracer.span("s", a=1) as span:
            span.set(b=2)
        with tracer.phase("p", ExecutionStats()):
            pass
        tracer.event("e")
        # The shared noop span never accumulates attributes.
        with tracer.span("t") as span:
            assert not getattr(span, "attrs", None)

    def test_enable_disable_roundtrip(self):
        collector = obs.enable()
        assert obs.tracing_enabled()
        assert obs.metrics_enabled()
        with obs.tracer().span("s"):
            pass
        assert len(collector) == 1
        obs.disable()
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()

    def test_scoped_trace_overrides_and_restores(self):
        with obs.scoped_trace() as collector:
            assert obs.tracing_enabled()
            with obs.tracer().span("s"):
                pass
        assert not obs.tracing_enabled()
        assert [s.name for s in collector.spans()] == ["s"]


class TestSpanModel:
    def test_as_dict_roundtrips_fields(self):
        span = Span(span_id=1, parent_id=None, name="n", start_s=1.0)
        span.end_s = 2.0
        span.sim_io_s = 0.5
        data = span.as_dict()
        assert data["name"] == "n"
        assert data["wall_s"] == 1.0
        assert data["sim_io_s"] == 0.5


def _ancestor_names(span, by_id):
    names = []
    parent = span.parent_id
    while parent is not None:
        names.append(by_id[parent].name)
        parent = by_id[parent].parent_id
    return names


@pytest.mark.parametrize("strategy", ["locking", "shared"])
def test_worker_spans_nest_across_threads(demo, strategy):
    """Jigsaw-L/S worker spans land on distinct threads yet parent into
    the engine's phase spans (ContextVar propagation through threads)."""
    table, workload, layouts = demo
    layout = layouts["irregular"]
    engine = ThreadedPartitionEngine(
        layout.manager, table.meta, strategy=strategy, n_threads=4
    )
    query = next(
        q for q in workload.queries if q.where
    )
    with obs.scoped_trace() as collector:
        engine.execute(query)
    spans = collector.spans()
    by_id = {s.span_id: s for s in spans}
    workers = [s for s in spans if s.name == "exec.worker"]
    assert workers, "threaded engine produced no worker spans"
    root_thread = next(s for s in spans if s.name == "exec.query").thread_id
    assert len({w.thread_id for w in workers}) > 1
    assert all(w.thread_id != root_thread for w in workers)
    for worker in workers:
        ancestors = _ancestor_names(worker, by_id)
        assert "exec.query" in ancestors
        assert any(
            name in ("exec.selection", "exec.projection", "exec.drain")
            for name in ancestors
        )
    # Partition reads inside workers nest under the worker span.
    for span in spans:
        if span.name == "exec.partition":
            ancestors = _ancestor_names(span, by_id)
            if by_id[span.parent_id].name == "exec.worker":
                assert "exec.query" in ancestors
