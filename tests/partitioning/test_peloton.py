"""Unit tests for the Peloton-style greedy vertical partitioner."""

from repro.core import Query, Workload
from repro.partitioning import PelotonPartitioner


class TestGrouping:
    def test_groups_cover_all_attributes(self, small_meta, small_workload):
        groups = PelotonPartitioner().partition(small_meta, small_workload)
        flattened = [a for group in groups for a in group]
        assert sorted(flattened) == sorted(small_meta.attribute_names)
        assert len(set(flattened)) == len(flattened)  # no attribute twice

    def test_costliest_template_claims_its_columns_first(self, small_meta):
        expensive = [
            Query.build(small_meta, ["a1", "a2", "a3", "a4"], {"a1": (0, 9999)})
            for _ in range(5)
        ]
        cheap = [Query.build(small_meta, ["a4", "a5"], {"a5": (0, 9999)})]
        workload = Workload(small_meta, expensive + cheap)
        groups = PelotonPartitioner().partition(small_meta, workload)
        # First group belongs to the expensive template; a4 is claimed there,
        # so the cheap template's group keeps only a5.
        assert set(groups[0]) == {"a1", "a2", "a3", "a4"}
        assert ("a5",) in groups

    def test_leftover_columns_form_final_group(self, small_meta):
        workload = Workload(
            small_meta, [Query.build(small_meta, ["a1"], {"a1": (0, 9999)})]
        )
        groups = PelotonPartitioner().partition(small_meta, workload)
        assert groups[0] == ("a1",)
        assert set(groups[-1]) == {"a2", "a3", "a4", "a5", "a6"}

    def test_empty_workload_yields_single_group(self, small_meta):
        groups = PelotonPartitioner().partition(small_meta, Workload(small_meta, []))
        assert len(groups) == 1
        assert set(groups[0]) == set(small_meta.attribute_names)

    def test_duplicate_templates_collapse(self, small_meta):
        queries = [
            Query.build(small_meta, ["a1", "a2"], {"a1": (0, 9999)}) for _ in range(4)
        ]
        partitioner = PelotonPartitioner()
        partitioner.partition(small_meta, Workload(small_meta, queries))
        assert partitioner.stats.n_templates == 1

    def test_group_order_follows_schema(self, small_meta):
        workload = Workload(
            small_meta,
            [Query.build(small_meta, ["a3", "a1"], {"a1": (0, 9999)})],
        )
        groups = PelotonPartitioner().partition(small_meta, workload)
        assert groups[0] == ("a1", "a3")
