"""Unit tests for the Schism-style graph partitioner."""

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.errors import InvalidPartitioningError
from repro.partitioning import SchismPartitioner


def checks_cover(groups, n):
    combined = np.concatenate(groups) if groups else np.empty(0, np.int64)
    assert len(combined) == n
    assert len(np.unique(combined)) == n


class TestBasics:
    def test_groups_partition_the_table(self, small_table, small_workload):
        partitioner = SchismPartitioner(n_partitions=4, sample_size=300)
        groups = partitioner.partition(small_table, small_workload)
        checks_cover(groups, small_table.n_tuples)
        assert 1 <= len(groups) <= 4

    def test_single_partition(self, small_table, small_workload):
        groups = SchismPartitioner(n_partitions=1).partition(small_table, small_workload)
        assert len(groups) == 1
        checks_cover(groups, small_table.n_tuples)

    def test_empty_workload_splits_evenly(self, small_table, small_meta):
        workload = Workload(small_meta, [])
        groups = SchismPartitioner(n_partitions=3).partition(small_table, workload)
        assert len(groups) == 3
        checks_cover(groups, small_table.n_tuples)

    def test_rejects_zero_partitions(self):
        with pytest.raises(InvalidPartitioningError):
            SchismPartitioner(n_partitions=0)

    def test_deterministic_for_fixed_seed(self, small_table, small_workload):
        a = SchismPartitioner(4, sample_size=200, seed=5).partition(
            small_table, small_workload
        )
        b = SchismPartitioner(4, sample_size=200, seed=5).partition(
            small_table, small_workload
        )
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_more_partitions_than_samples_clamped(self, small_table, small_workload):
        partitioner = SchismPartitioner(n_partitions=100, sample_size=16)
        groups = partitioner.partition(small_table, small_workload)
        checks_cover(groups, small_table.n_tuples)
        assert len(groups) <= 16


class TestCoAccessClustering:
    def test_coaccessed_tuples_gravitate_together(self, small_table, small_meta):
        """Queries that repeatedly select the low half of a1 should pull those
        tuples into the same partitions."""
        queries = [
            Query.build(small_meta, ["a2"], {"a1": (0, 4999)}, label=f"q{i}")
            for i in range(8)
        ]
        workload = Workload(small_meta, queries)
        partitioner = SchismPartitioner(n_partitions=2, sample_size=500, seed=1)
        groups = partitioner.partition(small_table, workload)
        checks_cover(groups, small_table.n_tuples)
        a1 = small_table.column("a1")
        # One group should be clearly enriched in matching tuples.
        fractions = sorted(float((a1[g] <= 4999).mean()) for g in groups)
        assert fractions[-1] > 0.8

    def test_stats_record_quadratic_work(self, small_table, small_workload):
        partitioner = SchismPartitioner(n_partitions=2, sample_size=128)
        partitioner.partition(small_table, small_workload)
        stats = partitioner.stats
        assert stats.n_sampled == 128
        assert stats.affinity_flops == 128 * 128 * len(small_workload)
        assert stats.elapsed_s > 0
