"""Fixtures for the planner tests: a tiny table with *deterministic* zones.

Three attributes live in disjoint value bands (a1 in [0, 99], a2 in
[1000, 1099], a3 in [2000, 2099]) and the explicit partitioning splits the
tuples in half, so every partition's zone map is known by construction:

    p0 stores (a1, a2) for tuples  0..49   — a1 zone [0, 49],  a2 [1000, 1049]
    p1 stores (a1, a2) for tuples 50..99   — a1 zone [50, 99], a2 [1050, 1099]
    p2 stores (a3,)    for all tuples      — a3 zone [2000, 2099]
"""

import numpy as np
import pytest

from repro.core import Query, TableSchema
from repro.storage import (
    BALOS_HDD,
    ColumnTable,
    MemoryBlobStore,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)

N = 100


@pytest.fixture()
def zoned_table() -> ColumnTable:
    schema = TableSchema.uniform(["a1", "a2", "a3"])
    base = np.arange(N, dtype=np.int32)
    columns = {"a1": base, "a2": base + 1000, "a3": base + 2000}
    return ColumnTable.build("Z", schema, columns)


@pytest.fixture()
def zoned_manager(zoned_table) -> PartitionManager:
    lower = np.arange(N // 2, dtype=np.int64)
    upper = np.arange(N // 2, N, dtype=np.int64)
    specs = [
        [SegmentSpec(("a1", "a2"), lower)],
        [SegmentSpec(("a1", "a2"), upper)],
        [SegmentSpec(("a3",), np.arange(N, dtype=np.int64))],
    ]
    manager = PartitionManager(
        zoned_table.schema, StorageDevice(BALOS_HDD), MemoryBlobStore()
    )
    manager.materialize_specs(specs, zoned_table, tid_storage=TID_CATALOG)
    return manager


@pytest.fixture()
def covering_manager(zoned_table) -> PartitionManager:
    """One partition storing every attribute of every tuple (localizable)."""
    specs = [[SegmentSpec(("a1", "a2", "a3"), np.arange(N, dtype=np.int64))]]
    manager = PartitionManager(
        zoned_table.schema, StorageDevice(BALOS_HDD), MemoryBlobStore()
    )
    manager.materialize_specs(specs, zoned_table, tid_storage=TID_CATALOG)
    return manager


@pytest.fixture()
def q_one_pred(zoned_table) -> Query:
    """SELECT a3 WHERE a1 IN [0, 20] — p1's a1 zone is disjoint."""
    return Query.build(zoned_table.meta, ["a3"], {"a1": (0, 20)})


@pytest.fixture()
def q_two_pred(zoned_table) -> Query:
    """a1 IN [0, 20] AND a2 IN [1050, 1099] — the policies diverge on p0:
    its a2 zone is disjoint (scan prunes) but its a1 zone overlaps
    (partition policy must read it)."""
    return Query.build(
        zoned_table.meta, ["a3"], {"a1": (0, 20), "a2": (1050, 1099)}
    )
