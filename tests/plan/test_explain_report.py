"""explain(): every executor's plan is inspectable, estimates meet actuals."""

from repro.core import Query
from repro.engine import (
    PartitionAtATimeExecutor,
    ReplicatedExecutor,
    ScanExecutor,
)
from repro.engine.parallel import ThreadedPartitionEngine


class TestReportContents:
    def test_render_names_the_decisions(self, zoned_manager, zoned_table, q_one_pred):
        executor = ScanExecutor(zoned_manager, zoned_table.meta, zone_maps=True)
        report = executor.explain(q_one_pred)
        text = report.render()
        assert report.engine == "scan"
        assert "pruning on" in text
        assert "REQUIRED" in text
        assert "PRUNED" in text
        assert "PROJECTION-ONLY" in text
        assert "disjoint" in text  # the pruning justification
        assert "0 <= a1 <= 20" in text  # normalized predicate
        assert "selection pushdown columns: a1" in text
        assert "estimate: <= 2 partition reads" in text
        assert report.n_pruned == 1

    def test_pruning_off_report(self, zoned_manager, zoned_table, q_one_pred):
        executor = ScanExecutor(zoned_manager, zoned_table.meta, zone_maps=False)
        report = executor.explain(q_one_pred)
        assert "pruning off" in report.render()
        assert report.n_pruned == 0

    def test_actuals_folded_in_after_execution(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        executor = ScanExecutor(zoned_manager, zoned_table.meta, zone_maps=True)
        report = executor.explain(q_one_pred)
        assert report.actual is None
        assert "actual:" not in report.render()
        _result, stats = executor.execute(q_one_pred)
        report.record_actuals(stats)
        text = report.render()
        assert "actual:" in text
        assert f"{stats.n_partition_reads} partition reads" in text
        # The estimate is an upper bound for a healthy run.
        assert stats.n_partition_reads <= report.estimated_partition_reads
        assert stats.n_partitions_pruned == report.n_pruned


class TestEveryEngineExplains:
    def test_partition_at_a_time(self, zoned_manager, zoned_table, q_one_pred):
        executor = PartitionAtATimeExecutor(zoned_manager, zoned_table.meta)
        report = executor.explain(q_one_pred)
        assert report.engine == "partition-at-a-time"
        assert report.policy_name == "partition"
        # This family stashes co-located projected cells during selection.
        assert report.selection_columns == ("a1", "a3")

    def test_threaded_engines(self, zoned_manager, zoned_table, q_one_pred):
        for strategy, engine in (("locking", "jigsaw-l"), ("shared", "jigsaw-s")):
            executor = ThreadedPartitionEngine(
                zoned_manager, zoned_table.meta, strategy=strategy, n_threads=2
            )
            report = executor.explain(q_one_pred)
            assert report.engine == engine
            assert report.policy_name == "partition"

    def test_replicated_local_and_fallback(
        self, zoned_manager, covering_manager, zoned_table, q_one_pred
    ):
        local = ReplicatedExecutor(covering_manager, zoned_table.meta)
        report = local.explain(q_one_pred)
        assert report.engine == "replicated-local"
        assert report.replica_fallback is True
        assert report.pruning is True  # always sound under full coverage

        fallback = ReplicatedExecutor(zoned_manager, zoned_table.meta)
        report = fallback.explain(q_one_pred)
        assert report.engine == "replicated (fallback: partition-at-a-time)"

    def test_no_where_explain(self, zoned_manager, zoned_table):
        query = Query.build(zoned_table.meta, ["a3"], {})
        executor = ScanExecutor(zoned_manager, zoned_table.meta)
        text = executor.explain(query).render()
        assert "every tuple qualifies" in text
        assert "selection accesses: 0" in text
