"""Unit tests for the relational operators and the join-strategy chooser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Query, TableSchema, Workload
from repro.layouts import BuildContext, IrregularLayout
from repro.plan.joins import _merge_components, choose_join_strategy
from repro.plan.relational import AggSpec, ColumnRef
from repro.plan.relops import (
    GroupAggOp,
    HashJoinOp,
    Relation,
    SpillConfig,
    tid_column,
)
from repro.plan.stats import ExecutionStats
from repro.storage import ColumnTable
from repro.storage.blob import MemoryBlobStore
from repro.testing.join_oracle import build_join_catalog, random_join_tables


def relation(table: str, **columns) -> Relation:
    arrays = {tid_column(table): np.arange(len(next(iter(columns.values()))))}
    for name, values in columns.items():
        arrays[f"{table}.{name}"] = np.asarray(values)
    return Relation(columns=arrays, tid_tables=(table,))


class TestMatchPairs:
    def test_duplicates_cross_product(self):
        build = np.array([1, 2, 2, 3])
        probe = np.array([2, 2, 4])
        b, p = HashJoinOp._match_pairs(build, probe)
        pairs = sorted(zip(b.tolist(), p.tolist()))
        # Two build 2s x two probe 2s = four pairs; 4 matches nothing.
        assert pairs == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_no_matches(self):
        b, p = HashJoinOp._match_pairs(np.array([1, 2]), np.array([3, 4]))
        assert len(b) == 0 and len(p) == 0


class TestHashJoinOp:
    def setup_method(self):
        self.left = relation("l", k=[1, 2, 2, 5], v=[10, 20, 21, 50])
        self.right = relation("r", k=[2, 2, 5, 7], w=[200, 201, 500, 700])

    def run_join(self, spill=None, build_is_left=True) -> Relation:
        op = HashJoinOp(spill=spill)
        build, probe = (
            (self.left, self.right) if build_is_left else (self.right, self.left)
        )
        build_key = "l.k" if build_is_left else "r.k"
        probe_key = "r.k" if build_is_left else "l.k"
        stats = ExecutionStats()
        out = op.run(
            build, probe, build_key, probe_key, stats, build_is_left=build_is_left
        )
        return out.sorted_canonical(), stats, op

    def test_memory_join(self):
        out, stats, op = self.run_join()
        assert op.last_mode == "memory"
        # 2x2 on key 2 plus 1x1 on key 5 = five rows.
        assert out.n_rows == 5
        assert stats.hash_inserts == 4 and stats.hash_updates == 4
        assert stats.materialized_bytes > 0
        # tid order follows FROM order regardless of build choice.
        assert out.tid_tables == ("l", "r")

    def test_build_side_flip_is_invisible(self):
        a, _, _ = self.run_join(build_is_left=True)
        # Building the right side instead must not change the output: the
        # tid order follows the logical FROM order, not the build choice.
        b, _, _ = self.run_join(build_is_left=False)
        assert tuple(b.tid_tables) == ("l", "r")
        assert set(a.columns) == set(b.columns)
        for name in a.columns:
            np.testing.assert_array_equal(a.columns[name], b.columns[name])

    def test_spill_equals_memory(self):
        store = MemoryBlobStore()
        spill = SpillConfig(store=store, budget_bytes=32)
        spilled, stats, op = self.run_join(spill=spill)
        plain, _, _ = self.run_join()
        assert op.last_mode.startswith("spill(")
        assert stats.n_spill_chunks >= 2
        assert stats.spill_bytes_written == stats.spill_bytes_read > 0
        for name in plain.columns:
            np.testing.assert_array_equal(
                spilled.columns[name], plain.columns[name]
            )
        # Spill chunks are deleted after the join.
        assert list(store.keys()) == []


class TestSpillConfig:
    def test_thresholds(self):
        cfg = SpillConfig(store=MemoryBlobStore(), budget_bytes=100)
        assert not cfg.should_spill(100)
        assert cfg.should_spill(101)
        assert cfg.n_chunks(101) == 2
        assert cfg.n_chunks(950) == 10

    def test_zero_budget_never_spills(self):
        cfg = SpillConfig(store=MemoryBlobStore(), budget_bytes=0)
        assert not cfg.should_spill(10**9)


class TestGroupAggOp:
    def test_grouped_known_answer(self):
        rel = relation("t", g=[2, 1, 2, 1, 3], x=[10, 1, 30, 3, 7])
        op = GroupAggOp(
            keys=("t.g",),
            aggs=(
                AggSpec("sum", ColumnRef("t", "x")),
                AggSpec("mean", ColumnRef("t", "x")),
                AggSpec("count", None),
            ),
        )
        out = op.run(rel, ExecutionStats())
        np.testing.assert_array_equal(out.column("t.g"), [1, 2, 3])
        np.testing.assert_array_equal(out.column("sum(t.x)"), [4.0, 40.0, 7.0])
        np.testing.assert_array_equal(out.column("mean(t.x)"), [2.0, 20.0, 7.0])
        counts = out.column("count(*)")
        np.testing.assert_array_equal(counts, [2, 2, 1])
        assert counts.dtype == np.int64

    def test_scalar_empty_semantics(self):
        rel = relation("t", x=np.empty(0, dtype=np.int32))
        op = GroupAggOp(
            keys=(),
            aggs=(
                AggSpec("sum", ColumnRef("t", "x")),
                AggSpec("count", None),
                AggSpec("min", ColumnRef("t", "x")),
                AggSpec("mean", ColumnRef("t", "x")),
            ),
        )
        out = op.run(rel, ExecutionStats())
        assert out.n_rows == 1
        assert out.column("sum(t.x)")[0] == 0.0
        assert out.column("count(*)")[0] == 0
        assert np.isnan(out.column("min(t.x)")[0])
        assert np.isnan(out.column("mean(t.x)")[0])

    def test_grouped_empty_input_is_zero_rows(self):
        rel = relation("t", g=np.empty(0, dtype=np.int32), x=np.empty(0))
        op = GroupAggOp(
            keys=("t.g",), aggs=(AggSpec("sum", ColumnRef("t", "x")),)
        )
        out = op.run(rel, ExecutionStats())
        assert out.n_rows == 0
        assert tuple(out.columns) == ("t.g", "sum(t.x)")


class TestMergeComponents:
    def test_touching_integer_zones_stay_separate(self):
        assert _merge_components([(1, 100), (101, 200)]) == [(1, 100), (101, 200)]

    def test_shared_endpoint_merges(self):
        assert _merge_components([(1, 100), (100, 200)]) == [(1, 200)]

    def test_unsorted_nested_input(self):
        got = _merge_components([(50, 60), (0, 100), (150, 160), (155, 170)])
        assert got == [(0, 100), (150, 170)]

    def test_empty(self):
        assert _merge_components([]) == []


class TestChooseJoinStrategy:
    @pytest.fixture(scope="class")
    def co_partitioned(self):
        # Big enough that both sides split into several contiguous key
        # zones (a ~2 KB partition holds ~250 int32 rows per column).
        rng = np.random.default_rng(11)
        fact = ColumnTable.build(
            "fact",
            TableSchema.uniform(["f_key", "f_a"]),
            {
                "f_key": rng.integers(0, 400, 6000).astype(np.int32),
                "f_a": rng.integers(0, 400, 6000).astype(np.int32),
            },
        )
        dim = ColumnTable.build(
            "dim",
            TableSchema.uniform(["d_key", "d_a"]),
            {
                "d_key": rng.integers(0, 400, 1500).astype(np.int32),
                "d_a": rng.integers(0, 400, 1500).astype(np.int32),
            },
        )

        def windows(meta, key):
            queries = [
                Query.build(
                    meta,
                    list(meta.schema.attribute_names),
                    {key: (i * 100, i * 100 + 99)},
                    label=f"train{i}",
                )
                for i in range(4)
            ]
            return Workload(meta, queries)

        make = lambda: IrregularLayout(zone_maps=True, selection_enabled=False)
        return build_join_catalog(
            make, fact, dim, windows(fact.meta, "f_key"),
            windows(dim.meta, "d_key"),
            ctx=BuildContext(file_segment_bytes=2048, schism_sample_size=100),
        )

    def choose(self, catalog, **kwargs):
        return choose_join_strategy(
            catalog["fact"],
            catalog["dim"],
            "f_key",
            "d_key",
            kwargs.pop("key_range", (0, 399)),
            ("f_key", "f_a"),
            ("d_key", "d_a"),
            **kwargs,
        )

    def test_co_partitioned_picks_partition_wise(self, co_partitioned):
        strategy = self.choose(co_partitioned)
        assert len(strategy.splits) >= 2
        assert strategy.kind == "partition-wise"
        assert strategy.est_partition_wise_cost <= strategy.est_broadcast_cost
        for split in strategy.splits:
            assert split.build_side in ("left", "right")
            assert split.lo <= split.hi

    def test_narrow_key_range_prunes_splits(self, co_partitioned):
        wide = self.choose(co_partitioned)
        narrow = self.choose(co_partitioned, key_range=(0, 99))
        assert len(narrow.splits) < len(wide.splits)
        for split in narrow.splits:
            assert split.hi <= 99

    def test_force_overrides_pricing(self, co_partitioned):
        for kind in ("partition-wise", "broadcast", "naive"):
            strategy = self.choose(co_partitioned, force=kind)
            assert strategy.kind == kind
            assert "forced" in strategy.reason

    def test_unclustered_key_falls_back_to_broadcast(self):
        rng = np.random.default_rng(12)
        fact, dim, fwl, dwl = random_join_tables(rng, co_partitioned=False)
        make = lambda: IrregularLayout(zone_maps=True, selection_enabled=False)
        catalog = build_join_catalog(
            make, fact, dim, fwl, dwl,
            ctx=BuildContext(file_segment_bytes=2048, schism_sample_size=100),
        )
        strategy = self.choose(catalog)
        # Key zones are wide and overlapping: one connected component at
        # best, or replicated reads price partition-wise out.
        assert strategy.kind == "broadcast"

    def test_spill_budget_raises_broadcast_cost(self, co_partitioned):
        free = self.choose(co_partitioned)
        tight = self.choose(co_partitioned, spill_budget_bytes=64)
        assert tight.est_broadcast_cost >= free.est_broadcast_cost
