"""Logical-plan layer: normalization, pushdown sets, pruning policies."""

import pytest

from repro.core import Query
from repro.plan import (
    POLICY_PARTITION,
    POLICY_SCAN,
    PROJECTION_ONLY,
    PRUNED,
    REQUIRED,
    LogicalPlan,
)


class TestNormalization:
    def test_predicates_sorted_by_attribute(self, zoned_table):
        # Build the WHERE dict in reverse attribute order; the normalized
        # conjunction is canonical regardless.
        query = Query.build(
            zoned_table.meta, ["a1"], {"a2": (1050, 1099), "a1": (0, 20)}
        )
        plan = LogicalPlan(query)
        assert tuple(p.attribute for p in plan.conjunction.predicates) == (
            "a1",
            "a2",
        )

    def test_unknown_policy_rejected(self, q_one_pred):
        with pytest.raises(ValueError):
            LogicalPlan(q_one_pred, policy="magic")


class TestPushdownSets:
    def test_scan_selection_reads_predicate_columns_only(self, q_one_pred):
        plan = LogicalPlan(q_one_pred, policy=POLICY_SCAN)
        assert plan.selection_columns == frozenset({"a1"})
        assert plan.projection_columns == frozenset({"a3"})

    def test_partition_selection_stashes_colocated_projection(self, q_one_pred):
        # Algorithm 5 line 16: the partition-at-a-time family never revisits
        # a partition, so its selection pass also decodes projected cells.
        plan = LogicalPlan(q_one_pred, policy=POLICY_PARTITION)
        assert plan.selection_columns == frozenset({"a1", "a3"})
        assert plan.projection_columns == frozenset({"a3"})


class TestClassification:
    def classify(self, manager, plan):
        return {
            pid: plan.classify(manager.info(pid)).decision
            for pid in (0, 1, 2)
        }

    def test_pruning_off_never_prunes(self, zoned_manager, q_one_pred):
        for policy in (POLICY_SCAN, POLICY_PARTITION):
            plan = LogicalPlan(q_one_pred, policy=policy, pruning=False)
            assert self.classify(zoned_manager, plan) == {
                0: REQUIRED,
                1: REQUIRED,
                2: PROJECTION_ONLY,
            }

    def test_scan_prunes_disjoint_zone(self, zoned_manager, q_one_pred):
        plan = LogicalPlan(q_one_pred, policy=POLICY_SCAN, pruning=True)
        assert self.classify(zoned_manager, plan) == {
            0: REQUIRED,  # a1 zone [0, 49] overlaps [0, 20]
            1: PRUNED,  # a1 zone [50, 99] disjoint
            2: PROJECTION_ONLY,
        }

    def test_policies_diverge_on_partial_disjointness(
        self, zoned_manager, q_two_pred
    ):
        # p0: a2 zone disjoint but a1 zone overlaps.  The scan policy prunes
        # on *any* disjoint stored predicate (an unset mask bit excludes the
        # tuple anyway); the partition policy must read it, because p0's a1
        # cells decide other predicates' verdicts for its tuples.
        scan = LogicalPlan(q_two_pred, policy=POLICY_SCAN, pruning=True)
        part = LogicalPlan(q_two_pred, policy=POLICY_PARTITION, pruning=True)
        assert scan.classify(zoned_manager.info(0)).decision == PRUNED
        assert part.classify(zoned_manager.info(0)).decision == REQUIRED
        # p1 mirrors it: a1 zone disjoint, a2 zone overlapping.
        assert scan.classify(zoned_manager.info(1)).decision == PRUNED
        assert part.classify(zoned_manager.info(1)).decision == REQUIRED

    def test_partition_prune_reports_invalidation_set(
        self, zoned_manager, q_one_pred
    ):
        plan = LogicalPlan(q_one_pred, policy=POLICY_PARTITION, pruning=True)
        decision = plan.classify(zoned_manager.info(1))
        assert decision.is_pruned
        assert decision.pruned_attributes == frozenset({"a1"})
        # The scan policy never needs the invalidation set.
        scan = LogicalPlan(q_one_pred, policy=POLICY_SCAN, pruning=True)
        assert scan.classify(zoned_manager.info(1)).pruned_attributes == frozenset()

    def test_decisions_cached_and_ordered(self, zoned_manager, q_one_pred):
        plan = LogicalPlan(q_one_pred, policy=POLICY_SCAN, pruning=True)
        first = plan.classify(zoned_manager.info(2))
        assert plan.classify(zoned_manager.info(2)) is first
        plan.classify(zoned_manager.info(0))
        plan.classify(zoned_manager.info(1))
        assert tuple(d.pid for d in plan.decisions()) == (0, 1, 2)

    def test_no_where_classifies_everything_projection_only(
        self, zoned_manager, zoned_table
    ):
        query = Query.build(zoned_table.meta, ["a1", "a3"], {})
        plan = LogicalPlan(query, policy=POLICY_SCAN, pruning=True)
        assert self.classify(zoned_manager, plan) == {
            0: PROJECTION_ONLY,
            1: PROJECTION_ONLY,
            2: PROJECTION_ONLY,
        }
