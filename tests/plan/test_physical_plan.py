"""Physical-plan layer: access order, estimates, pin hints, replica-local."""

import pytest

from repro.core import Query
from repro.core.cost import estimate_access_io
from repro.plan import POLICY_PARTITION, POLICY_SCAN, PROJECTION_ONLY, QueryPlanner


class TestAccessList:
    def test_accesses_ordered_by_pid(self, zoned_manager, zoned_table, q_two_pred):
        planner = QueryPlanner(zoned_manager, zoned_table.meta)
        plan = planner.plan(q_two_pred)
        assert plan.selection_pids() == (0, 1)
        assert plan.projection_pids() == (2,)

    def test_no_where_plans_projection_only(self, zoned_manager, zoned_table):
        query = Query.build(zoned_table.meta, ["a3"], {})
        plan = QueryPlanner(zoned_manager, zoned_table.meta).plan(query)
        assert plan.selection_pids() == ()
        assert plan.projection_pids() == (2,)

    def test_pushdown_columns_attached_to_accesses(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        planner = QueryPlanner(
            zoned_manager, zoned_table.meta, policy=POLICY_SCAN
        )
        plan = planner.plan(q_one_pred)
        assert all(a.columns == frozenset({"a1"}) for a in plan.selection)
        assert all(a.columns == frozenset({"a3"}) for a in plan.projection)

    def test_decision_for_covers_off_list_pids(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        # Substitute partitions enlisted at runtime are not on the access
        # lists; the plan must still classify them.
        plan = QueryPlanner(zoned_manager, zoned_table.meta).plan(q_one_pred)
        assert plan.decision_for(2).decision == PROJECTION_ONLY


class TestEstimates:
    def test_healthy_execution_matches_the_bound(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        planner = QueryPlanner(
            zoned_manager, zoned_table.meta, policy=POLICY_PARTITION
        )
        plan = planner.plan(q_one_pred)
        # No pruning: both predicate partitions plus the projection-only one.
        assert plan.estimated_partition_reads == 3
        expected_bytes = sum(zoned_manager.info(pid).n_bytes for pid in (0, 1, 2))
        assert plan.estimated_bytes == expected_bytes
        assert plan.estimated_io_time_s == pytest.approx(
            estimate_access_io(
                zoned_manager.device.profile.io_model,
                (zoned_manager.info(pid).n_bytes for pid in (0, 1, 2)),
            )
        )

    def test_pruned_accesses_drop_out_of_the_estimate(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        planner = QueryPlanner(
            zoned_manager, zoned_table.meta, policy=POLICY_SCAN, pruning=True
        )
        plan = planner.plan(q_one_pred)
        # p1 is pruned; p0 (selection) and p2 (projection) remain.
        assert plan.estimated_partition_reads == 2
        assert plan.estimated_bytes == (
            zoned_manager.info(0).n_bytes + zoned_manager.info(2).n_bytes
        )

    def test_projection_reads_not_double_counted(
        self, zoned_manager, zoned_table
    ):
        # Projection of a predicate attribute: p0/p1 appear on both lists
        # but the bound counts each partition once.
        query = Query.build(zoned_table.meta, ["a2"], {"a1": (0, 99)})
        plan = QueryPlanner(zoned_manager, zoned_table.meta).plan(query)
        assert plan.selection_pids() == (0, 1)
        assert plan.projection_pids() == (0, 1)
        assert plan.estimated_partition_reads == 2


class TestPinHints:
    def test_default_plan_pins_nothing(self, zoned_manager, zoned_table):
        query = Query.build(zoned_table.meta, ["a2"], {"a1": (0, 99)})
        plan = QueryPlanner(zoned_manager, zoned_table.meta).plan(query)
        assert plan.pin_hints() == frozenset()

    def test_pin_pool_flags_partitions_both_phases_touch(
        self, zoned_manager, zoned_table
    ):
        query = Query.build(zoned_table.meta, ["a2"], {"a1": (0, 99)})
        planner = QueryPlanner(zoned_manager, zoned_table.meta, pin_pool=True)
        plan = planner.plan(query)
        # p0/p1 hold predicate *and* projected cells: the selection read
        # should pin them so the projection pass finds them resident.
        assert plan.pin_hints() == frozenset({0, 1})

    def test_pin_pool_skips_single_phase_partitions(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        planner = QueryPlanner(zoned_manager, zoned_table.meta, pin_pool=True)
        plan = planner.plan(q_one_pred)
        # Selection partitions (a1, a2) and the projection partition (a3)
        # are disjoint sets: nothing is revisited, nothing pins.
        assert plan.pin_hints() == frozenset()


class TestReplicaLocal:
    def test_non_covering_layout_is_not_localizable(
        self, zoned_manager, zoned_table, q_one_pred
    ):
        planner = QueryPlanner(zoned_manager, zoned_table.meta)
        assert planner.plan_local(q_one_pred) is None
        assert planner.plan_replica_local(q_one_pred) is None

    def test_covering_layout_plans_locally(
        self, covering_manager, zoned_table, q_one_pred
    ):
        planner = QueryPlanner(
            covering_manager, zoned_table.meta, replica_fallback=True
        )
        assert planner.plan_local(q_one_pred) == (0,)
        plan = planner.plan_replica_local(q_one_pred)
        assert plan is not None
        assert plan.selection_pids() == (0,)
        assert plan.projection_pids() == ()
        # Local evaluation reads predicate and projected cells in one pass,
        # under the (locally sound) scan pruning policy.
        assert plan.logical.policy == POLICY_SCAN
        assert plan.logical.pruning is True
        assert plan.selection[0].columns == frozenset({"a1", "a3"})
        assert plan.policy.replica_fallback is True

    def test_no_where_is_not_localizable(self, covering_manager, zoned_table):
        query = Query.build(zoned_table.meta, ["a3"], {})
        planner = QueryPlanner(covering_manager, zoned_table.meta)
        assert planner.plan_local(query) is None
