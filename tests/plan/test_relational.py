"""Logical relational plans: validation, pushdown, equivalence propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Query, TableSchema
from repro.errors import InvalidQueryError
from repro.plan.relational import (
    AggSpec,
    ColumnRef,
    GroupAggNode,
    JoinCondition,
    JoinNode,
    RelationalQuery,
    ScanNode,
    build_relational_plan,
    single_table_query,
)
from repro.storage import ColumnTable


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(5)
    fact = ColumnTable.build(
        "fact",
        TableSchema.uniform(["f_key", "f_a", "f_b"]),
        {
            "f_key": rng.integers(0, 400, 500).astype(np.int32),
            "f_a": rng.integers(0, 400, 500).astype(np.int32),
            "f_b": rng.integers(0, 400, 500).astype(np.int32),
        },
    )
    dim = ColumnTable.build(
        "dim",
        TableSchema.uniform(["d_key", "d_a"]),
        {
            "d_key": rng.integers(50, 300, 120).astype(np.int32),
            "d_a": rng.integers(0, 400, 120).astype(np.int32),
        },
    )
    return fact, dim


@pytest.fixture(scope="module")
def metas(tables):
    fact, dim = tables
    return {"fact": fact.meta, "dim": dim.meta}


def join_query(**overrides) -> RelationalQuery:
    base = dict(
        tables=("fact", "dim"),
        joins=(JoinCondition(ColumnRef("fact", "f_key"), ColumnRef("dim", "d_key")),),
        where={},
        select=(ColumnRef("fact", "f_a"), ColumnRef("dim", "d_a")),
        group_by=(),
        label="t",
    )
    base.update(overrides)
    return RelationalQuery(**base)


class TestValidation:
    def test_unknown_table(self, metas):
        with pytest.raises(InvalidQueryError, match="unknown table 'nope'"):
            build_relational_plan(join_query(tables=("fact", "nope")), metas)

    def test_unknown_column(self, metas):
        query = join_query(where={ColumnRef("dim", "missing"): (0, 1)})
        with pytest.raises(InvalidQueryError, match="unknown column 'dim.missing'"):
            build_relational_plan(query, metas)

    def test_self_join_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="self-joins"):
            build_relational_plan(join_query(tables=("fact", "fact")), metas)

    def test_join_count_mismatch(self, metas):
        with pytest.raises(InvalidQueryError, match="JOIN ... ON conditions"):
            build_relational_plan(join_query(joins=()), metas)

    def test_disconnected_table(self, metas):
        query = join_query(
            joins=(
                JoinCondition(ColumnRef("fact", "f_key"), ColumnRef("fact", "f_a")),
            )
        )
        with pytest.raises(InvalidQueryError, match="not connected"):
            build_relational_plan(query, metas)

    def test_plain_column_with_scalar_aggregate(self, metas):
        query = join_query(
            select=(ColumnRef("dim", "d_a"), AggSpec("sum", ColumnRef("fact", "f_a")))
        )
        with pytest.raises(InvalidQueryError, match="add GROUP BY dim.d_a"):
            build_relational_plan(query, metas)

    def test_plain_column_outside_group_by(self, metas):
        query = join_query(
            select=(ColumnRef("fact", "f_a"), AggSpec("count", None)),
            group_by=(ColumnRef("dim", "d_a"),),
        )
        with pytest.raises(InvalidQueryError, match="must appear in GROUP BY"):
            build_relational_plan(query, metas)

    def test_group_by_without_aggregates(self, metas):
        query = join_query(
            select=(ColumnRef("dim", "d_a"),), group_by=(ColumnRef("dim", "d_a"),)
        )
        with pytest.raises(InvalidQueryError, match="GROUP BY without aggregates"):
            build_relational_plan(query, metas)

    def test_inverted_bounds(self, metas):
        query = join_query(where={ColumnRef("fact", "f_a"): (10, 5)})
        with pytest.raises(InvalidQueryError, match="inverted"):
            build_relational_plan(query, metas)

    def test_bad_aggregate_name(self):
        with pytest.raises(InvalidQueryError, match="unknown aggregate"):
            AggSpec("median", ColumnRef("fact", "f_a"))

    def test_star_aggregate_only_count(self):
        with pytest.raises(InvalidQueryError, match="only count"):
            AggSpec("sum", None)


class TestPushdownAndPropagation:
    def test_predicates_land_on_owning_scan(self, metas):
        query = join_query(
            where={
                ColumnRef("fact", "f_a"): (10, 90),
                ColumnRef("dim", "d_a"): (5, 50),
            }
        )
        plan = build_relational_plan(query, metas)
        assert plan.scans["fact"].pushed["f_a"] == (10.0, 90.0)
        assert plan.scans["dim"].pushed["d_a"] == (5.0, 50.0)
        assert "d_a" not in plan.scans["fact"].pushed
        assert "f_a" not in plan.scans["dim"].pushed

    def test_join_key_range_propagates(self, metas):
        query = join_query(where={ColumnRef("fact", "f_key"): (100, 150)})
        plan = build_relational_plan(query, metas)
        assert plan.scans["fact"].pushed["f_key"] == (100.0, 150.0)
        # The bound crosses the equivalence class onto the other side.
        assert plan.scans["dim"].pushed["d_key"] == (100.0, 150.0)
        assert "d_key" in plan.scans["dim"].propagated
        assert any("propagated" in note for note in plan.notes)

    def test_domain_overlap_propagates_without_predicates(self, metas, tables):
        fact, dim = tables
        plan = build_relational_plan(join_query(), metas)
        # dim's key domain is narrower than fact's, so the join can only
        # match inside it; both scans carry the intersected key bound.
        d = dim.meta.interval("d_key")
        f = fact.meta.interval("f_key")
        lo, hi = max(d.lo, f.lo), min(d.hi, f.hi)
        assert plan.scans["fact"].pushed["f_key"] == (lo, hi)
        assert plan.scans["dim"].pushed["d_key"] == (lo, hi)

    def test_out_of_domain_key_bound_empties_every_scan(self, metas, tables):
        fact, _ = tables
        hi = fact.meta.interval("f_key").hi
        # A key bound above both domains: the join is provably empty.
        query = join_query(where={ColumnRef("fact", "f_key"): (hi + 1000, hi + 2000)})
        plan = build_relational_plan(query, metas)
        assert plan.scans["fact"].empty and plan.scans["dim"].empty

    def test_disjoint_key_domains_mark_empty(self, metas, tables):
        _, dim = tables
        d_hi = dim.meta.interval("d_key").hi
        # Restrict fact's key strictly above dim's domain (still inside
        # fact's own domain), so propagation makes dim's scan contradictory.
        query = join_query(where={ColumnRef("fact", "f_key"): (d_hi + 1, d_hi + 50)})
        plan = build_relational_plan(query, metas)
        assert plan.scans["dim"].empty
        assert plan.scans["fact"].empty  # inner join: emptiness spreads
        assert any("provably empty" in note for note in plan.notes)

    def test_scan_columns_cover_upstream_needs(self, metas):
        query = join_query(
            select=(
                ColumnRef("dim", "d_a"),
                AggSpec("sum", ColumnRef("fact", "f_b")),
                AggSpec("count", None),
            ),
            group_by=(ColumnRef("dim", "d_a"),),
        )
        plan = build_relational_plan(query, metas)
        assert set(plan.scans["fact"].columns) == {"f_key", "f_b"}
        assert set(plan.scans["dim"].columns) == {"d_key", "d_a"}
        assert isinstance(plan.root, GroupAggNode)
        assert plan.output == ("dim.d_a", "sum(fact.f_b)", "count(*)")


class TestPlanShape:
    def test_join_nodes_left_deep(self, metas):
        plan = build_relational_plan(join_query(), metas)
        (node,) = plan.join_nodes
        assert isinstance(node, JoinNode)
        assert isinstance(node.left, ScanNode) and node.left.table == "fact"
        assert node.right.table == "dim"
        assert node.left_key == ColumnRef("fact", "f_key")

    def test_reversed_join_condition_is_normalized(self, metas):
        query = join_query(
            joins=(
                JoinCondition(ColumnRef("dim", "d_key"), ColumnRef("fact", "f_key")),
            )
        )
        plan = build_relational_plan(query, metas)
        (node,) = plan.join_nodes
        assert node.right.table == "dim"
        assert node.right_key == ColumnRef("dim", "d_key")

    def test_compile_query_intersects_extra(self, metas):
        plan = build_relational_plan(
            join_query(where={ColumnRef("fact", "f_a"): (10, 90)}), metas
        )
        scan = plan.scans["fact"]
        compiled = scan.compile_query(extra={"f_a": (50, 200)})
        assert compiled is not None
        assert (
            compiled.where["f_a"].lo,
            compiled.where["f_a"].hi,
        ) == (50.0, 90.0)
        assert scan.compile_query(extra={"f_a": (200, 300)}) is None


class TestSingleTableReduction:
    def test_trivial_plan_reduces_to_plain_query(self, metas, tables):
        fact, _ = tables
        query = RelationalQuery(
            tables=("fact",),
            joins=(),
            where={ColumnRef("fact", "f_a"): (10, 90)},
            select=(ColumnRef("fact", "f_key"), ColumnRef("fact", "f_b")),
            label="single",
        )
        plan = build_relational_plan(query, metas)
        reduced = single_table_query(plan)
        direct = Query.build(
            fact.meta, ["f_key", "f_b"], {"f_a": (10, 90)}, label="single"
        )
        assert reduced is not None
        # Identical single-table shape: the paper's pipeline sees the same
        # projection and predicate box it always has.
        assert reduced.select == direct.select
        assert {n: (iv.lo, iv.hi) for n, iv in reduced.where.items()} == {
            n: (iv.lo, iv.hi) for n, iv in direct.where.items()
        }
        assert reduced.label == "single"

    def test_join_or_aggregate_does_not_reduce(self, metas):
        assert single_table_query(build_relational_plan(join_query(), metas)) is None
        query = RelationalQuery(
            tables=("fact",),
            joins=(),
            where={},
            select=(AggSpec("count", None),),
            label="agg",
        )
        assert single_table_query(build_relational_plan(query, metas)) is None
