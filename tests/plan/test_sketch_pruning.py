"""Sketch-based data skipping through the planner: strictly more skips than
zone maps alone, oracle-exact results (also under faults and prefetch), and
EXPLAIN surfacing the sketch-prune reasons."""

import numpy as np
import pytest

from repro.core import Query, TableSchema
from repro.engine.partition_at_a_time import PartitionAtATimeExecutor
from repro.engine.scan import ScanExecutor
from repro.layouts import BuildContext
from repro.storage import (
    BALOS_HDD,
    ColumnTable,
    MemoryBlobStore,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    profile_workload,
    select_sketches,
)
from repro.testing.oracle import (
    ORACLE_LAYOUTS,
    inject_faults,
    run_differential_oracle,
    run_reference_query,
)
from repro.storage.faults import FaultConfig, FaultInjectingBlobStore

N_PARTITIONS = 4


def interleaved_table():
    """Every partition's ``a1`` spans [0, 98] but stores only even values,
    and ``a2`` tracks ``a1`` exactly — zone maps can prune neither an odd
    equality nor an off-diagonal rectangle, sketches can refute both."""
    schema = TableSchema.uniform(["a1", "a2", "a3"])
    n = 400
    a1 = (np.arange(n, dtype=np.int32) * 2) % 100
    columns = {
        "a1": a1,
        "a2": a1.copy(),
        "a3": np.arange(n, dtype=np.int32),
    }
    return ColumnTable.build("T", schema, columns)


def materialize(table):
    manager = PartitionManager(
        table.schema, StorageDevice(BALOS_HDD), MemoryBlobStore()
    )
    n = table.n_tuples
    chunk = n // N_PARTITIONS
    specs = [
        [
            SegmentSpec(
                ("a1", "a2", "a3"),
                np.arange(i * chunk, (i + 1) * chunk, dtype=np.int64),
            )
        ]
        for i in range(N_PARTITIONS)
    ]
    manager.materialize_specs(specs, table, tid_storage=TID_CATALOG)
    return manager


def attach_sketch_catalog(manager, table, train):
    profile = profile_workload(train)
    columns = {
        name: table.column(name) for name in table.schema.attribute_names
    }
    n_sketched = 0
    for pid in manager.pids():
        chosen = select_sketches(
            manager.info(pid), columns, profile, 0.010, 4096
        )
        if chosen is not None:
            manager.attach_sketches(pid, chosen)
            n_sketched += 1
    return n_sketched


@pytest.fixture()
def sketch_setup():
    table = interleaved_table()
    train = [
        Query.build(table.meta, ["a3"], {"a1": (50, 50)}, label="train-eq"),
        Query.build(
            table.meta, ["a3"], {"a1": (0, 30), "a2": (60, 98)},
            label="train-conj",
        ),
    ]
    zone_only = materialize(table)
    sketched = materialize(table)
    assert attach_sketch_catalog(sketched, table, train) == N_PARTITIONS
    return table, zone_only, sketched


class TestSketchPruning:
    @pytest.mark.parametrize("engine_cls", [ScanExecutor, PartitionAtATimeExecutor])
    def test_equality_skips_strictly_more_than_zones(
        self, sketch_setup, engine_cls
    ):
        table, zone_only, sketched = sketch_setup
        # 51 is odd: inside every partition's [0, 98] zone, in no partition.
        query = Query.build(table.meta, ["a3"], {"a1": (51, 51)})
        expected = run_reference_query(table, query)
        assert expected.n_tuples == 0

        base = engine_cls(zone_only, table.meta, zone_maps=True)
        plus = engine_cls(sketched, table.meta, zone_maps=True)
        result_base, stats_base = base.execute(query)
        result_plus, stats_plus = plus.execute(query)
        assert result_base.equals(expected) and result_plus.equals(expected)
        assert stats_base.n_partitions_sketch_pruned == 0
        assert stats_base.n_partitions_skipped == 0  # zones cannot help
        # The scan engine's two phases each count a pruned pid once, so the
        # counter is >= the partition count there and == for single-phase.
        assert stats_plus.n_partitions_sketch_pruned >= N_PARTITIONS
        assert stats_plus.n_partitions_skipped > stats_base.n_partitions_skipped
        assert stats_plus.n_partition_reads < stats_base.n_partition_reads

    @pytest.mark.parametrize("engine_cls", [ScanExecutor, PartitionAtATimeExecutor])
    def test_conjunction_grid_skips_strictly_more_than_zones(
        self, sketch_setup, engine_cls
    ):
        table, zone_only, sketched = sketch_setup
        # Off-diagonal rectangle: each 1-D zone overlaps, no (a1, a2) pair
        # can (a2 == a1 everywhere).
        query = Query.build(
            table.meta, ["a3"], {"a1": (0, 30), "a2": (60, 98)}
        )
        expected = run_reference_query(table, query)
        assert expected.n_tuples == 0

        base = engine_cls(zone_only, table.meta, zone_maps=True)
        plus = engine_cls(sketched, table.meta, zone_maps=True)
        result_base, stats_base = base.execute(query)
        result_plus, stats_plus = plus.execute(query)
        assert result_base.equals(expected) and result_plus.equals(expected)
        assert stats_base.n_partitions_skipped == 0
        assert stats_plus.n_partitions_sketch_pruned >= N_PARTITIONS
        assert stats_plus.n_partition_reads < stats_base.n_partition_reads

    def test_sketches_never_prune_matching_tuples(self, sketch_setup):
        table, _zone_only, sketched = sketch_setup
        executor = ScanExecutor(sketched, table.meta, zone_maps=True)
        for lo, hi in [(50, 50), (0, 98), (20, 21), (98, 98)]:
            query = Query.build(table.meta, ["a1", "a3"], {"a1": (lo, hi)})
            expected = run_reference_query(table, query)
            result, _stats = executor.execute(query)
            assert result.equals(expected)
            if lo == hi and lo % 2 == 0:
                assert expected.n_tuples > 0  # the sweep is not vacuous

    def test_explain_reports_sketch_prune_reasons(self, sketch_setup):
        table, _zone_only, sketched = sketch_setup
        executor = ScanExecutor(sketched, table.meta, zone_maps=True)
        eq_report = executor.plan(
            Query.build(table.meta, ["a3"], {"a1": (51, 51)})
        ).explain(engine="scan")
        assert "sketch" in eq_report.render()
        conj_report = executor.plan(
            Query.build(table.meta, ["a3"], {"a1": (0, 30), "a2": (60, 98)})
        ).explain(engine="scan")
        assert "grid sketch" in conj_report.render()

    def test_sketch_pruning_exact_under_fault_injection(self, sketch_setup):
        table, _zone_only, sketched = sketch_setup
        executor = PartitionAtATimeExecutor(
            sketched, table.meta, zone_maps=True, prefetch_depth=2
        )
        sketched.store = FaultInjectingBlobStore(
            sketched.store,
            config=FaultConfig(
                transient_error_rate=0.3, latency_spike_rate=0.3
            ),
            seed=5,
        )
        for lo, hi in [(51, 51), (50, 50), (0, 98)]:
            query = Query.build(table.meta, ["a1", "a3"], {"a1": (lo, hi)})
            expected = run_reference_query(table, query)
            result, stats = executor.execute(query)
            assert result.equals(expected)
            if lo == 51:
                assert stats.n_partitions_sketch_pruned >= N_PARTITIONS


@pytest.mark.slow
class TestSketchOracleSweep:
    def test_differential_oracle_with_sketches_and_prefetch(self):
        ctx = BuildContext(
            file_segment_bytes=2048,
            schism_sample_size=100,
            prefetch_depth=2,
            sketch_budget_bytes=2048,
        )
        report = run_differential_oracle(n_cases=30, ctx=ctx, seed=3)
        assert report.ok, report.summary()

    def test_oracle_exact_under_faults_with_sketches(self, rng):
        from repro.testing.oracle import random_table, random_workload

        table = random_table(rng, n_tuples=250)
        workload = random_workload(rng, table, n_queries=4)
        ctx = BuildContext(
            file_segment_bytes=2048,
            schism_sample_size=100,
            prefetch_depth=2,
            sketch_budget_bytes=2048,
        )
        for name, make in ORACLE_LAYOUTS:
            layout = make().build(table, workload, ctx)
            inject_faults(
                layout,
                config=FaultConfig(
                    transient_error_rate=0.2, latency_spike_rate=0.2
                ),
                seed=9,
            )
            for query in workload:
                expected = run_reference_query(table, query)
                outcome = layout.executor.execute(query)
                result = outcome[0] if isinstance(outcome, tuple) else outcome
                assert result.equals(expected), f"{name}: {query.label}"
