"""Fixtures for the serving-tier suite: a seeded table, a query pool with
deliberate predicate overlap, and an irregular layout to serve it from."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import BuildContext, IrregularLayout
from repro.testing.oracle import random_table, random_workload


@pytest.fixture()
def serve_ctx() -> BuildContext:
    return BuildContext(file_segment_bytes=2048, schism_sample_size=100)


@pytest.fixture()
def serve_table():
    return random_table(np.random.default_rng(31), n_attrs=5, n_tuples=600)


@pytest.fixture()
def serve_workload(serve_table):
    return random_workload(
        np.random.default_rng(32), serve_table, n_queries=6
    )


@pytest.fixture()
def irregular_layout(serve_table, serve_workload, serve_ctx):
    return IrregularLayout(selection_enabled=False).build(
        serve_table, serve_workload, serve_ctx
    )
