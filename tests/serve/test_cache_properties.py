"""Property-based tests (hypothesis) for the semantic partition cache.

Three families of invariants:

* **signature normalization** — equal normalized conjunctions (reordered
  conjuncts, flipped bounds) map to equal signatures; different pruning
  policies never share one;
* **coherence** — a catalog-version bump makes every prior entry
  unreachable (and the invalidation hook reclaims it);
* **pruning identity** — on random tables and queries, a cache-wired
  executor prunes to exactly the partition-ID set a cache-free twin does,
  both on the recording (cold) pass and the replaying (warm) pass, and both
  reproduce the dense numpy reference.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import PartitionAtATimeExecutor
from repro.layouts import BuildContext, IrregularLayout
from repro.serve import PartitionCache, predicate_signature
from repro.testing.oracle import (
    random_query,
    random_table,
    random_workload,
    run_reference_query,
)

ATTRIBUTES = [f"a{i}" for i in range(1, 7)]

predicate_maps = st.dictionaries(
    st.sampled_from(ATTRIBUTES),
    st.tuples(st.integers(-1_000, 1_000), st.integers(-1_000, 1_000)),
    min_size=1,
    max_size=4,
)
policies = st.sampled_from(["scan", "partition"])


class TestSignatureNormalization:
    @given(preds=predicate_maps, policy=policies, pruning=st.booleans(),
           data=st.data())
    def test_conjunct_order_never_splits_entries(
        self, preds, policy, pruning, data
    ):
        shuffled = dict(data.draw(st.permutations(list(preds.items()))))
        assert predicate_signature(preds, policy, pruning) == (
            predicate_signature(shuffled, policy, pruning)
        )

    @given(preds=predicate_maps, policy=policies, pruning=st.booleans())
    def test_flipped_bounds_never_split_entries(self, preds, policy, pruning):
        flipped = {name: (hi, lo) for name, (lo, hi) in preds.items()}
        assert predicate_signature(preds, policy, pruning) == (
            predicate_signature(flipped, policy, pruning)
        )

    @given(preds=predicate_maps, pruning=st.booleans())
    def test_policies_never_share_an_entry(self, preds, pruning):
        # Scan (any-disjoint) and partition (all-disjoint) pruning reach
        # different verdicts for the same predicates; one key would be unsound.
        assert predicate_signature(preds, "scan", pruning) != (
            predicate_signature(preds, "partition", pruning)
        )

    @given(preds=predicate_maps, policy=policies)
    def test_pruning_flag_never_shares_an_entry(self, preds, policy):
        assert predicate_signature(preds, policy, True) != (
            predicate_signature(preds, policy, False)
        )

    @given(preds=predicate_maps, policy=policies, pruning=st.booleans())
    def test_signature_is_deterministic_and_hashable(
        self, preds, policy, pruning
    ):
        a = predicate_signature(preds, policy, pruning)
        b = predicate_signature(dict(preds), policy, pruning)
        assert a == b and hash(a) == hash(b)


class TestCoherence:
    def test_catalog_version_bump_makes_entries_miss(
        self, irregular_layout, serve_table
    ):
        manager = irregular_layout.manager
        cache = PartitionCache(manager)
        engine = PartitionAtATimeExecutor(
            manager, serve_table.meta, zone_maps=True, partition_cache=cache
        )
        query = random_query(
            np.random.default_rng(7), serve_table, label="q"
        )
        expected = run_reference_query(serve_table, query)

        result, _ = engine.execute(query)
        assert result.equals(expected)
        assert (cache.stats.n_misses, cache.stats.n_hits) == (1, 0)
        result, _ = engine.execute(query)
        assert result.equals(expected)
        assert cache.stats.n_hits == 1

        # An identity-preserving swap: rewrite one partition with its own
        # bytes.  Data is unchanged, but the catalog version moved — every
        # cached verdict must become unreachable.
        pid = manager.pids()[0]
        partition, _ = manager.load(pid)
        token_before = manager.cache_token()
        manager.swap_partitions([partition])
        assert manager.cache_token() != token_before
        assert len(cache) == 0  # the invalidation hook reclaimed the entry
        assert cache.stats.n_invalidated >= 1

        result, _ = engine.execute(query)
        assert result.equals(expected)
        assert cache.stats.n_misses == 2  # new token: a miss, not a replay

    def test_sketch_rebuild_bumps_the_token(self, irregular_layout):
        manager = irregular_layout.manager
        before = manager.cache_token()
        manager.pruning_version += 1
        manager._notify_invalidation()
        assert manager.cache_token() != before

    def test_reordered_conjuncts_share_one_entry(
        self, irregular_layout, serve_table
    ):
        from repro.core import Query

        manager = irregular_layout.manager
        cache = PartitionCache(manager)
        engine = PartitionAtATimeExecutor(
            manager, serve_table.meta, zone_maps=True, partition_cache=cache
        )
        meta = serve_table.meta
        select = [meta.schema.attribute_names[0]]
        a, b = meta.schema.attribute_names[1:3]
        bounds_a, bounds_b = (10, 500), (200, 900)
        q1 = Query.build(meta, select, {a: bounds_a, b: bounds_b}, label="q1")
        q2 = Query.build(meta, select, {b: bounds_b, a: bounds_a}, label="q2")
        engine.execute(q1)
        engine.execute(q2)
        assert cache.stats.n_misses == 1
        assert cache.stats.n_hits == 1
        assert len(cache) == 1


def _surviving_pids(executor, query) -> tuple:
    plan = executor.plan(query)
    pids = {a.pid for a in plan.selection if not a.decision.is_pruned}
    pids.update(a.pid for a in plan.projection if not a.decision.is_pruned)
    return tuple(sorted(pids))


class TestPruningIdentity:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**31 - 1))
    def test_cache_on_prunes_exactly_like_cache_off(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, n_attrs=4)
        workload = random_workload(rng, table, n_queries=4)
        layout = IrregularLayout(selection_enabled=False).build(
            table,
            workload,
            BuildContext(file_segment_bytes=2048, schism_sample_size=100),
        )
        manager = layout.manager
        cache = PartitionCache(manager)
        cached = PartitionAtATimeExecutor(
            manager, table.meta, zone_maps=True, partition_cache=cache
        )
        plain = PartitionAtATimeExecutor(manager, table.meta, zone_maps=True)
        for query in workload:
            reference = run_reference_query(table, query)
            # Pass 1 records the entry; pass 2 replays it.  Both must land
            # on the cache-off partition set and the reference rows.
            for _ in range(2):
                assert _surviving_pids(cached, query) == (
                    _surviving_pids(plain, query)
                )
                result, _ = cached.execute(query)
                assert result.equals(reference)
        assert cache.stats.n_hits > 0
