"""CatalogPartitionCache: per-table verdict caching under multi-table plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import BuildContext, IrregularLayout
from repro.plan.dag import DagExecutor
from repro.serve import CatalogPartitionCache, predicate_signature
from repro.testing.join_oracle import (
    build_join_catalog,
    join_oracle_check,
    random_join_query,
    random_join_tables,
)

CTX = BuildContext(file_segment_bytes=2048, schism_sample_size=100)


@pytest.fixture()
def setup():
    rng = np.random.default_rng(21)
    fact, dim, fwl, dwl = random_join_tables(rng, co_partitioned=True)
    catalog = build_join_catalog(
        lambda: IrregularLayout(zone_maps=True, selection_enabled=False),
        fact, dim, fwl, dwl, CTX,
    )
    bindings = {name: catalog[name] for name in catalog.tables()}
    cache = CatalogPartitionCache(bindings)
    wired = cache.install(bindings)
    assert wired == 2
    query = random_join_query(rng, fact, dim, label="cached-join")
    return catalog, cache, {"fact": fact, "dim": dim}, query


class TestCatalogPartitionCache:
    def test_replay_hits_per_table(self, setup):
        catalog, cache, tables, query = setup
        executor = DagExecutor(catalog)
        assert join_oracle_check(executor, tables, query) is None
        first = cache.stats
        assert first.n_misses >= 2 and first.n_hits == 0
        # The same DAG again: every leaf's verdicts replay from the cache.
        assert join_oracle_check(executor, tables, query) is None
        second = cache.stats
        assert second.n_hits >= 2
        assert second.n_misses == first.n_misses

    def test_table_scope_keys_never_collide(self, setup):
        _, cache, _, _ = setup
        ranges = {"k": (0.0, 10.0)}
        fact_sig = predicate_signature(ranges, "scan", True, table="fact")
        dim_sig = predicate_signature(ranges, "scan", True, table="dim")
        assert fact_sig != dim_sig
        assert cache.for_table("fact").table_scope == "fact"

    def test_swap_invalidates_only_that_table(self, setup):
        catalog, cache, tables, query = setup
        executor = DagExecutor(catalog)
        assert join_oracle_check(executor, tables, query) is None
        fact_len = len(cache.for_table("fact"))
        dim_len = len(cache.for_table("dim"))
        assert fact_len >= 1 and dim_len >= 1

        manager = catalog["fact"].manager
        pid = manager.pids()[0]
        partition, _ = manager.load(pid)
        manager.swap_partitions([partition])

        # fact's entries died with its catalog version; dim's survive.
        assert len(cache.for_table("fact")) == 0
        assert len(cache.for_table("dim")) == dim_len
        assert cache.stats.n_invalidated >= fact_len
        # Still exact after the swap, via a fresh fact classification.
        assert join_oracle_check(executor, tables, query) is None

    def test_unknown_table_raises(self, setup):
        _, cache, _, _ = setup
        with pytest.raises(KeyError, match="no partition cache"):
            cache.for_table("nope")

    def test_clear_drops_everything(self, setup):
        catalog, cache, tables, query = setup
        executor = DagExecutor(catalog)
        assert join_oracle_check(executor, tables, query) is None
        assert len(cache) >= 2
        cache.clear()
        assert len(cache) == 0
