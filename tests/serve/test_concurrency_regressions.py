"""Slow concurrency regressions: storage read paths vs. live swaps.

The serving tier made ``swap_partitions`` a *concurrent* event: worker
threads hold buffer-pool pins and prefetcher stagings while the adaptive
daemon rewrites the catalog under them.  These tests race the two sides
directly — readers pin/release and prefetchers stage while a swapper
continuously overwrites partitions — and assert the only acceptable
outcome: every partition object any thread ever observes carries pristine
cell data, and nothing deadlocks or leaks a thread.

Marked ``slow``: the nightly tier runs them; ``-m "not slow"`` skips.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.storage import (
    BALOS_HDD,
    BufferPool,
    MemoryBlobStore,
    PartitionManager,
    Prefetcher,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)

N_PARTITIONS = 6
N_READERS = 8
N_ITERATIONS = 50
N_SWAPS = 30
ATTRS = ("a1", "a2")


def _build_manager(table, pool=None) -> PartitionManager:
    manager = PartitionManager(
        table.schema,
        StorageDevice(BALOS_HDD),
        MemoryBlobStore(),
        buffer_pool=pool,
    )
    chunk = table.n_tuples // N_PARTITIONS
    specs = [
        [SegmentSpec(ATTRS, np.arange(i * chunk, (i + 1) * chunk,
                                      dtype=np.int64))]
        for i in range(N_PARTITIONS)
    ]
    manager.materialize_specs(specs, table, tid_storage=TID_CATALOG)
    return manager


def _make_verifier(table, errors):
    columns = {name: table.column(name) for name in ATTRS}
    def verify(partition) -> None:
        for segment in partition.segments:
            tids = segment.tuple_ids
            for name in ATTRS:
                if not np.array_equal(segment.columns[name],
                                      columns[name][tids]):
                    errors.append(f"pid {partition.pid}: corrupt {name}")
    return verify


def _swapper(manager, stop, errors, n_swaps=N_SWAPS):
    """Continuously rewrite partitions in place: same cells, new catalog
    version — the shape of every adaptive migration commit."""
    try:
        for i in range(n_swaps):
            if stop.is_set():
                return
            pid = i % N_PARTITIONS
            partition, _delta = manager.load(pid)
            manager.swap_partitions([partition])
    except Exception as exc:  # noqa: BLE001 - fail the test, not the thread
        errors.append(f"swapper: {exc!r}")


@pytest.mark.slow
class TestBufferPoolVsSwap:
    def test_pinned_reads_stay_pristine_under_swaps(self, small_table):
        pool = BufferPool(capacity_bytes=1 << 20)
        manager = _build_manager(small_table, pool)
        errors: list = []
        verify = _make_verifier(small_table, errors)
        stop = threading.Event()
        version_before = manager.catalog_version
        barrier = threading.Barrier(N_READERS + 1)

        def reader(thread_id: int) -> None:
            rng = np.random.default_rng(thread_id)
            try:
                barrier.wait()
                for _ in range(N_ITERATIONS):
                    pid = int(rng.integers(0, N_PARTITIONS))
                    # Pin-or-load: exactly what a serving worker does.  A
                    # concurrent swap may invalidate the entry mid-pin; the
                    # object already in hand must still be pristine.
                    with pool.pinned(pid) as partition:
                        if partition is None:
                            partition, _delta = manager.load(pid)
                        verify(partition)
            except Exception as exc:  # noqa: BLE001
                errors.append(f"reader {thread_id}: {exc!r}")

        threads = [
            threading.Thread(target=reader, args=(i,))
            for i in range(N_READERS)
        ]
        swapper = threading.Thread(
            target=lambda: (barrier.wait(), _swapper(manager, stop, errors))
        )
        for thread in [*threads, swapper]:
            thread.start()
        for thread in threads:
            thread.join(120.0)
            assert not thread.is_alive(), "reader deadlocked"
        stop.set()
        swapper.join(120.0)
        assert not swapper.is_alive(), "swapper deadlocked"

        assert errors == []
        assert manager.catalog_version > version_before
        # The storm over: the pool invariant holds and reloads are pristine.
        assert pool.current_bytes <= pool.capacity_bytes
        pool.clear()
        for pid in manager.pids():
            partition, _delta = manager.load(pid)
            verify(partition)
        assert errors == []


@pytest.mark.slow
class TestPrefetcherVsSwap:
    def test_staged_loads_stay_pristine_under_swaps(self, small_table):
        manager = _build_manager(small_table)
        errors: list = []
        verify = _make_verifier(small_table, errors)
        stop = threading.Event()
        version_before = manager.catalog_version
        swapper = threading.Thread(
            target=_swapper, args=(manager, stop, errors, 60)
        )
        prefetcher = Prefetcher(manager, depth=4)
        n_staged = 0
        try:
            # Quiet round first: with no swaps racing, staging must work.
            # Let the workers stage the head of the queue before taking —
            # an immediate take would claim the entries inline (discard).
            prefetcher.start(list(manager.pids()))
            deadline = 500
            while prefetcher.stats.n_loaded < 4 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            for pid in manager.pids():
                staged = prefetcher.take(pid)
                if staged is not None:
                    n_staged += 1
                    verify(staged[0])
            swapper.start()
            for _round in range(12):
                pids = list(manager.pids())
                prefetcher.start(pids)
                for pid in pids:
                    # A staging that raced a swap may come back None (stale
                    # against the catalog) — then the inline path answers,
                    # exactly as the engines fall back.
                    staged = prefetcher.take(pid)
                    if staged is not None:
                        partition, _delta = staged
                        n_staged += 1
                    else:
                        partition, _delta = manager.load(pid)
                    verify(partition)
        finally:
            stop.set()
            swapper.join(120.0)
            prefetcher.close()

        assert not swapper.is_alive(), "swapper deadlocked"
        assert errors == []
        assert n_staged > 0, "prefetcher never staged anything"
        assert manager.catalog_version > version_before
        # No prefetch worker outlives close().
        assert all(not t.is_alive() for t in prefetcher._threads)
