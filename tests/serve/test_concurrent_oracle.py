"""Concurrent differential-oracle sweeps through the serving tier.

The serving tier's correctness claim is not "the engines are right" (the
oracle in :mod:`tests.testing` already pins that, serially) but "the
engines are *still* right when eight clients hammer them through the
scheduler with the partition cache on — while the store injects faults and
the adaptive daemon swaps the layout mid-replay."  Every replayed result is
diffed against the dense numpy reference in the client thread.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.adaptive import AdaptiveConfig, AdaptiveDaemon, AdvisorConfig
from repro.cli import _serve_engines
from repro.core import Query, TableSchema, Workload
from repro.engine import PartitionAtATimeExecutor
from repro.layouts import BuildContext, IrregularLayout
from repro.serve import (
    PartitionCache,
    QueryScheduler,
    build_client_mix,
    run_replay,
)
from repro.storage import ColumnTable, FaultConfig, RetryPolicy
from repro.testing.oracle import (
    ORACLE_LAYOUTS,
    inject_faults,
    random_table,
    random_workload,
    run_reference_query,
)

N_CLIENTS = 8


def _verifier(table):
    def verify(engine, query, result, _stats):
        if result.equals(run_reference_query(table, query)):
            return None
        return f"{engine}: {query.label!r} diverged from the reference"

    return verify


class TestConcurrentSweep:
    @pytest.mark.parametrize(
        "layout_name,make", ORACLE_LAYOUTS, ids=[n for n, _ in ORACLE_LAYOUTS]
    )
    def test_every_engine_oracle_exact_under_concurrency(
        self, layout_name, make, serve_table, serve_workload, serve_ctx
    ):
        layout = make().build(serve_table, serve_workload, serve_ctx)
        cache = PartitionCache(layout.manager)
        engines = _serve_engines(layout, serve_table, cache)
        mix = build_client_mix(
            np.random.default_rng(41),
            tuple(engines),
            list(serve_workload.queries),
            n_clients=N_CLIENTS,
            requests_per_client=6,
        )
        with QueryScheduler(engines, workers=4, queue_depth=16) as scheduler:
            report = run_replay(
                scheduler, mix, verify=_verifier(serve_table)
            )
        assert report.ok, report.failures[:3]
        assert report.n_completed == N_CLIENTS * 6
        assert scheduler.n_errors == 0
        # The overlapping mix must actually have exercised the cache.
        assert cache.stats.n_hits > 0

    def test_oracle_exact_under_fault_injection(
        self, serve_table, serve_workload, serve_ctx
    ):
        layout = IrregularLayout(selection_enabled=False).build(
            serve_table, serve_workload, serve_ctx
        )
        layout.manager.retry_policy = RetryPolicy(max_attempts=8)
        store = inject_faults(
            layout,
            FaultConfig(transient_error_rate=0.10, corruption_rate=0.05),
            seed=3,
        )
        cache = PartitionCache(layout.manager)
        engines = _serve_engines(layout, serve_table, cache)
        mix = build_client_mix(
            np.random.default_rng(42),
            tuple(engines),
            list(serve_workload.queries),
            n_clients=N_CLIENTS,
            requests_per_client=5,
        )
        with QueryScheduler(engines, workers=4, queue_depth=16) as scheduler:
            report = run_replay(
                scheduler, mix, verify=_verifier(serve_table)
            )
        assert report.ok, report.failures[:3]
        assert report.n_completed == N_CLIENTS * 5
        # The run is only meaningful if faults really fired.
        assert store.stats.n_transient_errors + store.stats.n_bit_flips > 0


class TestSwapMidReplay:
    """Cache-on serving stays oracle-exact across an adaptive migration."""

    @staticmethod
    def _drift_setup():
        rng = np.random.default_rng(7)
        schema = TableSchema.uniform([f"a{i}" for i in range(1, 9)])
        columns = {
            name: rng.integers(0, 10_000, 5_000).astype(np.int32)
            for name in schema.attribute_names
        }
        table = ColumnTable.build("T", schema, columns)
        meta = table.meta
        train = Workload(meta, [
            Query.build(meta, ["a2", "a3"], {"a1": (0, 1999)}, label="Q1"),
            Query.build(meta, ["a2", "a3"], {"a4": (5000, 9999)}, label="Q2"),
            Query.build(meta, ["a5"], {"a6": (4000, 4999)}, label="Q3"),
        ])
        shifted = [
            Query.build(meta, ["a7", "a8"], {"a7": (0, 2999)}, label="S1"),
            Query.build(meta, ["a7", "a8"], {"a8": (7000, 9999)}, label="S2"),
        ]
        layout = IrregularLayout().build(
            table, train, BuildContext(file_segment_bytes=8 * 1024)
        )
        assert layout.plan is not None and layout.plan.kind == "irregular"
        return table, train, shifted, layout

    def test_migration_mid_replay_stays_exact_and_invalidates(self):
        table, train, shifted, layout = self._drift_setup()
        manager = layout.manager
        daemon = AdaptiveDaemon(
            layout,
            table,
            AdaptiveConfig(
                window_size=32,
                advisor=AdvisorConfig(
                    drift_threshold=0.2, drift_reset=0.1,
                    min_improvement=0.01, cooldown_queries=4,
                ),
                bytes_budget_per_cycle=1 << 30,
                # Retired partitions must stay readable for plans that were
                # in flight when the swap committed.
                auto_prune=False,
            ),
        )
        cache = PartitionCache(manager)
        engine = PartitionAtATimeExecutor(
            table=table.meta, manager=manager,
            zone_maps=True, partition_cache=cache,
        )
        queries = list(train.queries) + shifted
        mix = build_client_mix(
            np.random.default_rng(43),
            ("partition-at-a-time",),
            queries,
            n_clients=N_CLIENTS,
            requests_per_client=20,
        )
        version_before = manager.catalog_version

        # Drive drift through the daemon-observed mainline path first, so
        # run_cycle deterministically fires once the replay is in flight.
        for _ in range(16):
            for query in shifted:
                layout.execute(query)

        report_box = {}
        verify = _verifier(table)

        def replay():
            with QueryScheduler(
                {"partition-at-a-time": engine}, workers=4, queue_depth=32
            ) as scheduler:
                report_box["report"] = run_replay(
                    scheduler, mix, verify=verify
                )

        replayer = threading.Thread(target=replay, name="replay-driver")
        replayer.start()
        time.sleep(0.05)  # let clients get in flight before the swap
        cycle = daemon.run_cycle()
        replayer.join(120.0)
        assert not replayer.is_alive()

        report = report_box["report"]
        assert cycle.fired, cycle.reason
        assert daemon.stats.n_migrations == 1
        assert manager.catalog_version > version_before
        assert report.ok, report.failures[:3]
        assert report.n_completed == N_CLIENTS * 20
        # The swap's version bump reached the cache's invalidation hook.
        assert cache.stats.n_invalidated > 0 or cache.stats.n_stale_drops > 0
        # Post-swap serving still agrees with the reference and re-warms.
        hits_before = cache.stats.n_hits
        for query in queries:
            result, _ = engine.execute(query)
            assert result.equals(run_reference_query(table, query))
            result, _ = engine.execute(query)
            assert result.equals(run_reference_query(table, query))
        assert cache.stats.n_hits > hits_before
