"""Unit tests for the query scheduler: lifecycle, priorities, admission.

Stub engines (a gate event instead of real I/O) make every ordering and
accounting assertion deterministic: the worker pool's behavior is pinned by
events, never by sleeps racing real executors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.plan.result import ResultSet
from repro.serve import (
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    AdmissionRejected,
    QueryScheduler,
)


@dataclass(frozen=True)
class FakeQuery:
    label: str


def _empty_result() -> ResultSet:
    return ResultSet(np.array([], dtype=np.int64), {})


@dataclass
class StubEngine:
    """Duck-typed executor: optionally parks on ``gate`` before answering."""

    gate: threading.Event | None = None
    fail: bool = False
    started: threading.Event = field(default_factory=threading.Event)
    calls: list = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def execute(self, query):
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10.0), "stub gate never released"
        if self.fail:
            raise RuntimeError(f"engine failure on {query.label}")
        with self._lock:
            self.calls.append(query.label)
        return _empty_result(), None


def _wait_for(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.002)


class TestLifecycle:
    def test_start_and_close_are_idempotent(self):
        scheduler = QueryScheduler({"stub": StubEngine()}, workers=2)
        assert scheduler.start() is scheduler
        scheduler.start()  # second start is a no-op, not a second pool
        assert threading.active_count() >= 2
        scheduler.close()
        scheduler.close()  # second close is a no-op

    def test_submit_before_start_raises(self):
        scheduler = QueryScheduler({"stub": StubEngine()}, workers=1)
        with pytest.raises(RuntimeError, match="not started"):
            scheduler.submit("stub", FakeQuery("q"))

    def test_submit_after_close_is_rejected(self):
        scheduler = QueryScheduler({"stub": StubEngine()}, workers=1)
        scheduler.start()
        scheduler.close()
        with pytest.raises(AdmissionRejected, match="closed"):
            scheduler.submit("stub", FakeQuery("q"))
        assert scheduler.n_rejected == 1

    def test_start_after_close_raises(self):
        scheduler = QueryScheduler({"stub": StubEngine()}, workers=1)
        scheduler.start()
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.start()

    def test_close_finishes_queued_work_first(self):
        gate = threading.Event()
        engine = StubEngine(gate=gate)
        scheduler = QueryScheduler({"stub": StubEngine(), "gated": engine},
                                   workers=1).start()
        tickets = [
            scheduler.submit("gated", FakeQuery(f"q{i}")) for i in range(4)
        ]
        gate.set()
        scheduler.close()
        assert all(ticket.done() for ticket in tickets)
        assert scheduler.n_completed == 4
        assert len(engine.calls) == 4

    def test_context_manager_round_trip(self):
        with QueryScheduler({"stub": StubEngine()}, workers=2) as scheduler:
            result, stats = scheduler.execute("stub", FakeQuery("q"))
        assert result.n_tuples == 0 and stats is None
        assert scheduler.n_completed == 1

    def test_drain_blocks_until_inflight_work_finishes(self):
        gate = threading.Event()
        engine = StubEngine(gate=gate)
        with QueryScheduler({"gated": engine}, workers=1) as scheduler:
            ticket = scheduler.submit("gated", FakeQuery("q"))
            drained = threading.Event()

            def drainer():
                scheduler.drain()
                drained.set()

            thread = threading.Thread(target=drainer)
            thread.start()
            assert engine.started.wait(5.0)
            assert not drained.wait(0.05)  # still in flight: drain must block
            gate.set()
            thread.join(5.0)
            assert drained.is_set()
            assert ticket.done()


class TestPriorities:
    def test_high_priority_overtakes_queued_normal(self):
        gate = threading.Event()
        engine = StubEngine(gate=gate)
        with QueryScheduler({"stub": engine}, workers=1) as scheduler:
            scheduler.submit("stub", FakeQuery("first"))
            assert engine.started.wait(5.0)  # worker parked on the gate
            for label in ("n1", "n2"):
                scheduler.submit("stub", FakeQuery(label), PRIORITY_NORMAL)
            for label in ("h1", "h2"):
                scheduler.submit("stub", FakeQuery(label), PRIORITY_HIGH)
            assert scheduler.pending() == {"high": 2, "normal": 2}
            gate.set()
            scheduler.drain()
        # FIFO within each level, high level drained first.
        assert engine.calls == ["first", "h1", "h2", "n1", "n2"]

    def test_unknown_priority_is_a_value_error(self):
        with QueryScheduler({"stub": StubEngine()}, workers=1) as scheduler:
            with pytest.raises(ValueError, match="unknown priority"):
                scheduler.submit("stub", FakeQuery("q"), "urgent")


class TestAdmission:
    def test_queue_full_rejects_and_counts(self):
        gate = threading.Event()
        engine = StubEngine(gate=gate)
        with QueryScheduler(
            {"stub": engine}, workers=1, queue_depth=2
        ) as scheduler:
            scheduler.submit("stub", FakeQuery("inflight"))
            assert engine.started.wait(5.0)
            _wait_for(lambda: scheduler.pending() == {"high": 0, "normal": 0})
            scheduler.submit("stub", FakeQuery("q1"))
            scheduler.submit("stub", FakeQuery("q2"))
            with pytest.raises(AdmissionRejected, match="queue full"):
                scheduler.submit("stub", FakeQuery("q3"))
            assert scheduler.n_rejected == 1
            assert scheduler.n_submitted == 3  # the rejected one never counts
            gate.set()
            scheduler.drain()
            # Rejection is load leveling, not loss: a retry now succeeds.
            scheduler.execute("stub", FakeQuery("q3-retried"))
        assert scheduler.n_completed == 4
        assert "q3-retried" in engine.calls

    def test_unknown_engine_is_rejected(self):
        with QueryScheduler({"stub": StubEngine()}, workers=1) as scheduler:
            with pytest.raises(AdmissionRejected, match="unknown engine"):
                scheduler.submit("nope", FakeQuery("q"))


class TestEngineCaps:
    def test_saturated_engine_does_not_block_other_engines(self):
        gate = threading.Event()
        capped = StubEngine(gate=gate)
        free = StubEngine()
        with QueryScheduler(
            {"capped": capped, "free": free},
            workers=2,
            engine_caps={"capped": 1},
        ) as scheduler:
            scheduler.submit("capped", FakeQuery("a1"))
            assert capped.started.wait(5.0)
            # "capped" is at its cap; a second worker must skip a2 and run b1.
            a2 = scheduler.submit("capped", FakeQuery("a2"))
            b1 = scheduler.submit("free", FakeQuery("b1"))
            b1.wait(5.0)
            assert free.calls == ["b1"]
            assert not a2.done()  # still queued behind the cap
            assert scheduler.occupancy()["capped"] == 1
            gate.set()
            scheduler.drain()
        assert capped.calls == ["a1", "a2"]

    def test_threaded_engine_shape_defaults_to_single_flight(self):
        class ThreadedShape:
            n_threads = 2

            def execute(self, query):
                return _empty_result(), None

        scheduler = QueryScheduler(
            {"threaded": ThreadedShape(), "plain": StubEngine()}, workers=4
        )
        assert scheduler._engines["threaded"].cap == 1
        assert scheduler._engines["plain"].cap == 4

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError, match="workers"):
            QueryScheduler({"stub": StubEngine()}, workers=0)
        with pytest.raises(ValueError, match="queue_depth"):
            QueryScheduler({"stub": StubEngine()}, queue_depth=0)
        with pytest.raises(ValueError, match="cap"):
            QueryScheduler(
                {"stub": StubEngine()}, engine_caps={"stub": 0}
            )


class TestErrors:
    def test_engine_error_reraises_from_wait_and_is_counted(self):
        with QueryScheduler(
            {"bad": StubEngine(fail=True), "good": StubEngine()}, workers=1
        ) as scheduler:
            ticket = scheduler.submit("bad", FakeQuery("boom"))
            with pytest.raises(RuntimeError, match="engine failure on boom"):
                ticket.wait(5.0)
            # The worker survives the error and serves the next request.
            scheduler.execute("good", FakeQuery("after"))
        assert scheduler.n_errors == 1
        assert scheduler.n_completed == 1

    def test_wait_timeout_raises_timeout_error(self):
        gate = threading.Event()
        with QueryScheduler(
            {"gated": StubEngine(gate=gate)}, workers=1
        ) as scheduler:
            ticket = scheduler.submit("gated", FakeQuery("slow"))
            with pytest.raises(TimeoutError):
                ticket.wait(0.05)
            gate.set()
            result, _ = ticket.wait(5.0)
            assert result.n_tuples == 0

    def test_tickets_record_queue_wait_and_latency(self):
        with QueryScheduler({"stub": StubEngine()}, workers=1) as scheduler:
            ticket = scheduler.submit("stub", FakeQuery("q"))
            ticket.wait(5.0)
        assert ticket.latency_s >= ticket.queue_wait_s >= 0.0
