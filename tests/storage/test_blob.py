"""Unit tests for blob stores."""

import pytest

from repro.errors import StorageError
from repro.storage import DirectoryBlobStore, MemoryBlobStore


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryBlobStore()
    return DirectoryBlobStore(str(tmp_path / "blobs"))


class TestBlobStore:
    def test_put_get_roundtrip(self, store):
        store.put("a/p1.jig", b"hello")
        assert store.get("a/p1.jig") == b"hello"
        assert store.size("a/p1.jig") == 5

    def test_overwrite(self, store):
        store.put("k", b"one")
        store.put("k", b"two!")
        assert store.get("k") == b"two!"
        assert store.size("k") == 4

    def test_missing_key_raises(self, store):
        with pytest.raises(StorageError):
            store.get("missing")
        with pytest.raises(StorageError):
            store.size("missing")

    def test_missing_key_error_names_the_key(self, store):
        """Both stores must raise the same StorageError, carrying the key —
        callers (retry loops, logs) rely on the message naming the blob."""
        with pytest.raises(StorageError, match="'absent/blob.jig'"):
            store.get("absent/blob.jig")
        with pytest.raises(StorageError, match="'absent/blob.jig'"):
            store.size("absent/blob.jig")

    def test_key_prefix_directory_is_not_a_blob(self, store):
        """A key naming another key's parent 'directory' is absent on both
        stores (the directory store must not raise IsADirectoryError)."""
        store.put("dir/y", b"cdef")
        with pytest.raises(StorageError, match="'dir'"):
            store.get("dir")
        assert "dir" not in store

    def test_contains(self, store):
        store.put("k", b"x")
        assert "k" in store
        assert "nope" not in store

    def test_delete_is_idempotent(self, store):
        store.put("k", b"x")
        store.delete("k")
        store.delete("k")
        assert "k" not in store

    def test_keys_and_total_bytes(self, store):
        store.put("x", b"ab")
        store.put("dir/y", b"cdef")
        assert sorted(store.keys()) == ["dir/y", "x"]
        assert store.total_bytes() == 6


class TestDirectoryStore:
    def test_rejects_escaping_keys(self, tmp_path):
        store = DirectoryBlobStore(str(tmp_path / "root"))
        with pytest.raises(StorageError):
            store.put("../escape", b"x")
