"""Buffer pool: LRU byte budget, pinning, invalidation, manager composition."""

import numpy as np
import pytest

from repro.storage import (
    BALOS_HDD,
    BufferPool,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    TID_EXPLICIT,
    build_physical_partition,
)


def _dummy_partition(pid: int) -> object:
    """The pool never inspects the cached object; any sentinel works."""
    return ("partition", pid)


class TestPoolLRU:
    def test_hit_and_miss_counters(self):
        pool = BufferPool(capacity_bytes=1000)
        assert pool.get(0) is None
        pool.put(0, _dummy_partition(0), 100)
        assert pool.get(0) == ("partition", 0)
        assert pool.stats.n_misses == 1
        assert pool.stats.n_hits == 1
        assert pool.stats.hit_bytes == 100

    def test_byte_budget_evicts_lru_first(self):
        pool = BufferPool(capacity_bytes=300)
        for pid in range(3):
            pool.put(pid, _dummy_partition(pid), 100)
        pool.get(0)  # 0 becomes MRU; LRU order is now 1, 2, 0
        pool.put(3, _dummy_partition(3), 100)
        assert 1 not in pool
        assert pool.pids() == (2, 0, 3)
        assert pool.stats.n_evictions == 1
        assert pool.stats.evicted_bytes == 100
        assert pool.current_bytes == 300

    def test_eviction_order_is_strictly_lru(self):
        pool = BufferPool(capacity_bytes=200)
        pool.put(0, _dummy_partition(0), 100)
        pool.put(1, _dummy_partition(1), 100)
        pool.put(2, _dummy_partition(2), 150)  # must evict 0 then 1
        assert pool.pids() == (2,)
        assert pool.stats.n_evictions == 2

    def test_oversized_entry_not_admitted(self):
        pool = BufferPool(capacity_bytes=100)
        pool.put(0, _dummy_partition(0), 50)
        pool.put(1, _dummy_partition(1), 500)
        assert 1 not in pool
        assert 0 in pool  # the resident entry survives the refusal
        assert pool.current_bytes == 50

    def test_put_refreshes_existing_entry(self):
        pool = BufferPool(capacity_bytes=300)
        pool.put(0, _dummy_partition(0), 100)
        pool.put(0, "replacement", 200)
        assert pool.get(0) == "replacement"
        assert pool.current_bytes == 200

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestPinning:
    def test_pinned_entry_survives_eviction_pressure(self):
        pool = BufferPool(capacity_bytes=200)
        pool.put(0, _dummy_partition(0), 100, pin=True)
        pool.put(1, _dummy_partition(1), 100)
        pool.put(2, _dummy_partition(2), 100)  # over budget; 0 pinned → evict 1
        assert 0 in pool
        assert 1 not in pool
        pool.unpin(0)
        pool.put(3, _dummy_partition(3), 100)  # now 0 is evictable LRU
        assert 0 not in pool
        assert pool.current_bytes <= 200

    def test_pinned_context_manager(self):
        pool = BufferPool(capacity_bytes=200)
        pool.put(0, _dummy_partition(0), 100)
        with pool.pinned(0) as partition:
            assert partition == ("partition", 0)
            pool.put(1, _dummy_partition(1), 100)
            pool.put(2, _dummy_partition(2), 100)
            assert 0 in pool
        with pool.pinned(99) as partition:
            assert partition is None

    def test_invalidate_removes_even_pinned(self):
        pool = BufferPool(capacity_bytes=200)
        pool.put(0, _dummy_partition(0), 100, pin=True)
        pool.invalidate(0)
        assert 0 not in pool
        assert pool.stats.n_invalidations == 1


@pytest.fixture()
def pooled_manager(small_table):
    device = StorageDevice(BALOS_HDD)
    pool = BufferPool(capacity_bytes=1 << 24)
    manager = PartitionManager(small_table.schema, device, buffer_pool=pool)
    n = small_table.n_tuples
    manager.materialize_specs(
        [
            [SegmentSpec(("a1", "a2"), np.arange(n // 2, dtype=np.int64))],
            [SegmentSpec(("a1", "a3"), np.arange(n // 2, n, dtype=np.int64))],
        ],
        small_table,
        tid_storage=TID_CATALOG,
    )
    return manager


class TestManagerComposition:
    def test_pool_miss_charges_device_hit_charges_nothing(self, pooled_manager):
        manager = pooled_manager
        _partition, cold = manager.load(0)
        assert cold.io_time_s > 0 and cold.bytes_read == manager.info(0).n_bytes
        assert cold.n_pool_hits == 0
        warm_partition, warm = manager.load(0)
        assert warm.io_time_s == 0.0
        assert warm.bytes_read == 0
        assert warm.n_pool_hits == 1
        assert warm.pool_hit_bytes == manager.info(0).n_bytes
        # The device never saw the second read at all.
        assert manager.device.stats.n_reads == 1
        assert np.array_equal(
            warm_partition.segments[0].tuple_ids,
            _partition.segments[0].tuple_ids,
        )

    def test_pool_hit_serves_any_projection(self, pooled_manager, small_table):
        manager = pooled_manager
        manager.load(0, columns=frozenset({"a1"}))
        partition, delta = manager.load(0, columns=frozenset({"a2"}))
        assert delta.n_pool_hits == 1
        segment = partition.segments[0]
        assert np.array_equal(
            np.asarray(segment.columns["a2"]),
            small_table.column("a2")[segment.tuple_ids],
        )

    def test_replace_partition_invalidates_pool(self, pooled_manager, small_table):
        manager = pooled_manager
        manager.load(0)
        assert 0 in manager.buffer_pool
        n = small_table.n_tuples
        rebuilt = build_physical_partition(
            0,
            [SegmentSpec(("a1", "a2", "a4"), np.arange(n // 2, dtype=np.int64))],
            small_table,
            TID_EXPLICIT,
        )
        manager.replace_partition(rebuilt)
        assert 0 not in manager.buffer_pool
        partition, delta = manager.load(0)
        assert delta.n_pool_hits == 0  # stale object must not be served
        assert "a4" in partition.segments[0].attributes

    def test_simulated_os_cache_still_applies_on_pool_miss(self, small_table):
        device = StorageDevice(BALOS_HDD, cache_bytes=1 << 24)
        pool = BufferPool(capacity_bytes=1 << 24)
        manager = PartitionManager(small_table.schema, device, buffer_pool=pool)
        n = small_table.n_tuples
        manager.materialize_specs(
            [[SegmentSpec(("a1", "a2"), np.arange(n, dtype=np.int64))]],
            small_table,
            tid_storage=TID_CATALOG,
        )
        manager.load(0)  # cold: device read, populates both caches
        pool.clear()  # drop the pool but keep the simulated OS cache warm
        _partition, delta = manager.load(0)
        assert delta.n_pool_hits == 0
        assert delta.n_cache_hits == 1  # simulated cache hit, not a device read
        assert delta.io_time_s == 0.0


class TestLoadWithoutPool:
    def test_default_load_stays_eager_and_uncached(self, small_table):
        manager = PartitionManager(small_table.schema, StorageDevice(BALOS_HDD))
        n = small_table.n_tuples
        manager.materialize_specs(
            [[SegmentSpec(("a1", "a2"), np.arange(n, dtype=np.int64))]],
            small_table,
            tid_storage=TID_CATALOG,
        )
        manager.load(0)
        _partition, delta = manager.load(0)
        assert delta.bytes_read == manager.info(0).n_bytes  # re-read, as before
        segment = _partition.segments[0]
        assert isinstance(segment.columns, dict)  # eager decode preserved
