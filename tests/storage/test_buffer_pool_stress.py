"""Concurrency stress: the buffer pool under a fault-injecting store.

Many threads load partitions through one shared manager + pool while the
store injects transient errors and bit-flips and a chaos thread invalidates
pool entries.  The assertions are about *correctness under concurrency*:
every partition object any thread ever observes carries pristine cell data
(a corrupt read must retry or fail, never serve garbage — including through
the pool), and the pool's budget invariant holds throughout.
"""

import threading

import numpy as np
import pytest

from repro.errors import PartitionUnreadableError
from repro.storage import (
    BALOS_HDD,
    BufferPool,
    FaultConfig,
    FaultInjectingBlobStore,
    MemoryBlobStore,
    PartitionManager,
    RetryPolicy,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)

N_PARTITIONS = 8
N_THREADS = 8
N_ITERATIONS = 60


@pytest.mark.slow
class TestBufferPoolStress:
    def test_loads_stay_correct_under_faults_and_invalidation(self, small_table):
        pool = BufferPool(capacity_bytes=64 * 1024)
        store = FaultInjectingBlobStore(
            MemoryBlobStore(),
            FaultConfig(transient_error_rate=0.25, corruption_rate=0.15),
            seed=11,
        )
        manager = PartitionManager(
            small_table.schema,
            StorageDevice(BALOS_HDD),
            store,
            buffer_pool=pool,
            retry_policy=RetryPolicy(max_attempts=8),
        )
        n = small_table.n_tuples
        chunk = n // N_PARTITIONS
        specs = [
            [
                SegmentSpec(
                    ("a1", "a2"),
                    np.arange(i * chunk, (i + 1) * chunk, dtype=np.int64),
                )
            ]
            for i in range(N_PARTITIONS)
        ]
        manager.materialize_specs(specs, small_table, tid_storage=TID_CATALOG)

        a1, a2 = small_table.column("a1"), small_table.column("a2")
        load_lock = threading.Lock()  # device counters are not thread-safe
        stop = threading.Event()
        errors: list = []
        n_unreadable = [0]

        def verify(partition) -> None:
            for segment in partition.segments:
                tids = segment.tuple_ids
                if not np.array_equal(segment.columns["a1"], a1[tids]):
                    errors.append(f"pid {partition.pid}: corrupt a1 served")
                if not np.array_equal(segment.columns["a2"], a2[tids]):
                    errors.append(f"pid {partition.pid}: corrupt a2 served")

        def reader(thread_id: int) -> None:
            rng = np.random.default_rng(thread_id)
            try:
                for _ in range(N_ITERATIONS):
                    pid = int(rng.integers(0, N_PARTITIONS))
                    # The pool hit path runs lock-free on purpose: it must be
                    # safe to race against concurrent put/invalidate.
                    partition = pool.get(pid)
                    if partition is None:
                        with load_lock:
                            try:
                                partition, _delta = manager.load(pid)
                            except PartitionUnreadableError:
                                n_unreadable[0] += 1
                                continue
                    verify(partition)
                    if pool.current_bytes > pool.capacity_bytes:
                        errors.append("pool over budget")
            except Exception as exc:  # noqa: BLE001 - fail the test, not the thread
                errors.append(f"reader {thread_id}: {exc!r}")

        def chaos() -> None:
            rng = np.random.default_rng(999)
            while not stop.is_set():
                pool.invalidate(int(rng.integers(0, N_PARTITIONS)))

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(N_THREADS)
        ]
        chaos_thread = threading.Thread(target=chaos)
        chaos_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        chaos_thread.join()

        assert errors == []
        # Faults really were injected, and some reads really did recover.
        assert store.stats.n_transient_errors > 0
        assert store.stats.n_bit_flips > 0
        # With 8 retry attempts at these rates almost everything recovers;
        # whatever did not must have aborted loudly, never returned garbage.
        assert pool.current_bytes <= pool.capacity_bytes

        # After the storm: a clean reload of every partition is pristine.
        pool.clear()
        store.config = FaultConfig()
        for pid in manager.pids():
            partition, _delta = manager.load(pid)
            verify(partition)
        assert errors == []
