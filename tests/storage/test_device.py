"""Unit tests for the simulated storage device and its cache."""

import pytest

from repro.core import fit_io_model
from repro.storage import (
    BALOS_HDD,
    EBS_GP2,
    EBS_IO1,
    DeviceProfile,
    StorageDevice,
    synthetic_profile_measurements,
)


class TestProfiles:
    def test_presets_match_table_3_throughputs(self):
        assert BALOS_HDD.io_model.throughput_mb_per_s == pytest.approx(75.0)
        assert EBS_GP2.io_model.throughput_mb_per_s == pytest.approx(125.0)
        assert EBS_IO1.io_model.throughput_mb_per_s == pytest.approx(1000.0)

    def test_profile_ordering(self):
        """Faster devices take less time for the same read."""
        size = 64 * 1024 * 1024
        t_hdd = BALOS_HDD.io_model.io_time(size)
        t_gp2 = EBS_GP2.io_model.io_time(size)
        t_io1 = EBS_IO1.io_model.io_time(size)
        assert t_hdd > t_gp2 > t_io1


class TestStorageDevice:
    def test_read_charges_linear_time(self):
        device = StorageDevice(DeviceProfile.from_throughput("d", 100.0, 0.01))
        elapsed = device.read("f", 100 * 10**6)
        assert elapsed == pytest.approx(1.01)
        assert device.stats.bytes_read == 100 * 10**6
        assert device.stats.n_reads == 1

    def test_chunked_read_pays_latency_per_chunk(self):
        device = StorageDevice(DeviceProfile.from_throughput("d", 100.0, 0.01))
        elapsed = device.read("f", 10 * 2**20, chunk_size=2**20)
        single = StorageDevice(DeviceProfile.from_throughput("d", 100.0, 0.01)).read(
            "f", 10 * 2**20
        )
        assert elapsed > single
        assert device.stats.n_reads == 10

    def test_chunked_read_with_remainder(self):
        device = StorageDevice(DeviceProfile.from_throughput("d", 100.0, 0.0))
        device.read("f", 2**20 + 1, chunk_size=2**20)
        assert device.stats.n_reads == 2

    def test_zero_byte_read_free(self):
        device = StorageDevice(BALOS_HDD)
        assert device.read("f", 0) == 0.0
        assert device.stats.n_reads == 0


class TestBufferCache:
    def test_second_read_hits_cache(self):
        device = StorageDevice(BALOS_HDD, cache_bytes=10**6)
        first = device.read("f", 500_000)
        second = device.read("f", 500_000)
        assert first > 0 and second == 0.0
        assert device.stats.n_cache_hits == 1
        assert device.stats.bytes_read == 500_000

    def test_lru_eviction(self):
        device = StorageDevice(BALOS_HDD, cache_bytes=1000)
        device.read("a", 600)
        device.read("b", 600)  # evicts a
        assert device.read("a", 600) > 0.0  # miss again
        assert device.stats.n_cache_hits == 0

    def test_oversized_file_never_cached(self):
        device = StorageDevice(BALOS_HDD, cache_bytes=100)
        device.read("big", 1000)
        assert device.read("big", 1000) > 0.0
        assert device.cached_bytes == 0

    def test_drop_caches(self):
        device = StorageDevice(BALOS_HDD, cache_bytes=10**6)
        device.read("f", 1000)
        device.drop_caches()
        assert device.read("f", 1000) > 0.0
        assert device.stats.n_cache_hits == 0

    def test_invalidate_single_key(self):
        device = StorageDevice(BALOS_HDD, cache_bytes=10**6)
        device.read("f", 1000)
        device.read("g", 1000)
        device.invalidate("f")
        assert device.read("f", 1000) > 0.0  # miss
        assert device.read("g", 1000) == 0.0  # still cached

    def test_write_populates_cache(self):
        device = StorageDevice(BALOS_HDD, cache_bytes=10**6)
        device.write("f", 1000)
        assert device.read("f", 1000) == 0.0

    def test_cache_disabled_by_default(self):
        device = StorageDevice(BALOS_HDD)
        device.read("f", 1000)
        assert device.read("f", 1000) > 0.0


class TestCalibration:
    def test_fitting_synthetic_measurements_recovers_profile(self):
        sizes, times = synthetic_profile_measurements(BALOS_HDD, noise=0.01, seed=3)
        fitted = fit_io_model(sizes, times)
        assert fitted.alpha == pytest.approx(BALOS_HDD.io_model.alpha, rel=0.1)
