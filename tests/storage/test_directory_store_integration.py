"""Integration: a full layout materialized to REAL files on disk."""

import os

import numpy as np
import pytest

from repro.core import Query, Workload
from repro.engine import PartitionAtATimeExecutor
from repro.storage import (
    BALOS_HDD,
    DirectoryBlobStore,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_EXPLICIT,
    checksum_overhead,
)


class TestOnDiskLayout:
    def test_materialize_query_roundtrip_via_filesystem(self, small_table, tmp_path):
        store = DirectoryBlobStore(str(tmp_path / "partitions"))
        device = StorageDevice(BALOS_HDD)
        manager = PartitionManager(small_table.schema, device, store)
        n = small_table.n_tuples
        lower = np.arange(n // 2, dtype=np.int64)
        upper = np.arange(n // 2, n, dtype=np.int64)
        manager.materialize_specs(
            [
                [SegmentSpec(("a1", "a2", "a3"), lower)],
                [SegmentSpec(("a1", "a2", "a3"), upper)],
                [SegmentSpec(("a4", "a5", "a6"), np.arange(n, dtype=np.int64))],
            ],
            small_table,
            tid_storage=TID_EXPLICIT,
        )
        # Real files exist and sizes match the catalog.
        files = sorted(os.listdir(tmp_path / "partitions"))
        assert len(files) == 3
        for pid in manager.pids():
            info = manager.info(pid)
            # Physical file = accounted (v1-equivalent) size + v2 CRCs.
            assert os.path.getsize(tmp_path / "partitions" / info.key) == (
                info.n_bytes + checksum_overhead(len(info.segment_tids))
            )

        executor = PartitionAtATimeExecutor(manager, small_table.meta)
        query = Query.build(small_table.meta, ["a2", "a5"], {"a1": (0, 4999)})
        result, stats = executor.execute(query)
        mask = small_table.column("a1") <= 4999
        expected = np.nonzero(mask)[0]
        assert np.array_equal(result.tuple_ids, expected)
        assert np.array_equal(
            result.column("a5"), small_table.column("a5")[expected]
        )
        assert stats.bytes_read > 0

    def test_reopening_the_directory_preserves_blobs(self, small_table, tmp_path):
        root = str(tmp_path / "blobs")
        store = DirectoryBlobStore(root)
        store.put("p000001.jig", b"payload")
        reopened = DirectoryBlobStore(root)
        assert reopened.get("p000001.jig") == b"payload"
