"""Fault-injecting store, checksum verification, and the retry read path."""

import numpy as np
import pytest

from repro.errors import (
    ChecksumError,
    PartitionUnreadableError,
    StorageError,
    TransientStorageError,
)
from repro.storage import (
    BALOS_HDD,
    FORMAT_VERSION,
    FaultConfig,
    FaultInjectingBlobStore,
    MemoryBlobStore,
    PartitionManager,
    RetryPolicy,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    checksum_overhead,
    deserialize_partition,
    serialize_partition,
)
from repro.storage.faults import _draws


@pytest.fixture()
def seeded_store():
    inner = MemoryBlobStore()
    inner.put("p1", bytes(range(256)) * 8)
    inner.put("p2", b"payload-two" * 50)
    return inner


def faulty_manager(small_table, config=None, overrides=None, policy=None):
    """A two-partition manager whose store injects the given faults."""
    store = FaultInjectingBlobStore(
        MemoryBlobStore(), config=config, overrides=overrides
    )
    manager = PartitionManager(
        small_table.schema,
        StorageDevice(BALOS_HDD),
        store,
        retry_policy=policy,
    )
    n = small_table.n_tuples
    manager.materialize_specs(
        [
            [SegmentSpec(("a1", "a2"), np.arange(n, dtype=np.int64))],
            [SegmentSpec(("a3",), np.arange(n, dtype=np.int64))],
        ],
        small_table,
        tid_storage=TID_CATALOG,
    )
    return manager, store


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(transient_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(corruption_rate=-0.1)

    def test_default_is_transparent(self, seeded_store):
        wrapper = FaultInjectingBlobStore(seeded_store)
        assert wrapper.get("p1") == seeded_store.get("p1")
        assert wrapper.stats.n_gets == 1
        assert wrapper.stats.n_transient_errors == 0
        assert wrapper.consume_injected_latency() == 0.0


class TestDeterminism:
    def test_draws_are_pure(self):
        assert _draws(7, "k", 0, 5) == _draws(7, "k", 0, 5)
        assert _draws(7, "k", 0, 5) != _draws(8, "k", 0, 5)
        assert _draws(7, "k", 0, 5) != _draws(7, "k", 1, 5)

    def test_same_seed_replays_identically(self, seeded_store):
        def run(seed):
            wrapper = FaultInjectingBlobStore(
                seeded_store,
                FaultConfig(transient_error_rate=0.4, corruption_rate=0.4),
                seed=seed,
            )
            outcomes = []
            for _ in range(20):
                try:
                    outcomes.append(wrapper.get("p1"))
                except TransientStorageError:
                    outcomes.append("transient")
            return outcomes

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_attempt_counter_gives_fresh_draws(self, seeded_store):
        """Retries must not see the same verdict forever at partial rates."""
        wrapper = FaultInjectingBlobStore(
            seeded_store, FaultConfig(transient_error_rate=0.5), seed=0
        )
        verdicts = set()
        for _ in range(30):
            try:
                wrapper.get("p1")
                verdicts.add("ok")
            except TransientStorageError:
                verdicts.add("fail")
        assert verdicts == {"ok", "fail"}


class TestInjectedFaults:
    def test_transient_raises_storage_error(self, seeded_store):
        wrapper = FaultInjectingBlobStore(
            seeded_store, FaultConfig(transient_error_rate=1.0)
        )
        with pytest.raises(TransientStorageError):
            wrapper.get("p1")
        assert isinstance(TransientStorageError("x"), StorageError)

    def test_truncation_fails_checksum(self, schema_partition):
        schema, partition, data = schema_partition
        store = MemoryBlobStore()
        store.put("p", data)
        wrapper = FaultInjectingBlobStore(store, FaultConfig(truncation_rate=1.0))
        truncated = wrapper.get("p")
        assert len(truncated) < len(data)
        with pytest.raises(StorageError):
            deserialize_partition(truncated, schema)

    def test_bit_flip_fails_checksum(self, schema_partition):
        schema, partition, data = schema_partition
        store = MemoryBlobStore()
        store.put("p", data)
        wrapper = FaultInjectingBlobStore(store, FaultConfig(corruption_rate=1.0))
        corrupted = wrapper.get("p")
        assert corrupted != data
        assert len(corrupted) == len(data)
        with pytest.raises(StorageError):
            deserialize_partition(corrupted, schema)

    def test_faults_never_touch_stored_bytes(self, schema_partition):
        _schema, _partition, data = schema_partition
        store = MemoryBlobStore()
        store.put("p", data)
        wrapper = FaultInjectingBlobStore(
            store, FaultConfig(truncation_rate=1.0, corruption_rate=1.0)
        )
        wrapper.get("p")
        assert store.get("p") == data

    def test_latency_is_simulated_not_slept(self, seeded_store):
        wrapper = FaultInjectingBlobStore(
            seeded_store,
            FaultConfig(latency_spike_rate=1.0, latency_spike_s=0.5),
        )
        wrapper.get("p1")
        wrapper.get("p2")
        assert wrapper.consume_injected_latency() == pytest.approx(1.0)
        assert wrapper.consume_injected_latency() == 0.0

    def test_overrides_scope_faults_to_one_key(self, seeded_store):
        wrapper = FaultInjectingBlobStore(
            seeded_store,
            overrides={"p1": FaultConfig(transient_error_rate=1.0)},
        )
        with pytest.raises(TransientStorageError):
            wrapper.get("p1")
        assert wrapper.get("p2") == seeded_store.get("p2")


@pytest.fixture()
def schema_partition(small_table):
    """A serialized one-partition layout: (schema, physical, file bytes)."""
    from repro.storage import build_physical_partition

    n = small_table.n_tuples
    physical = build_physical_partition(
        0,
        [SegmentSpec(("a1", "a2"), np.arange(n, dtype=np.int64))],
        small_table,
        TID_CATALOG,
    )
    data = serialize_partition(physical, small_table.schema)
    return small_table.schema, physical, data


class TestRetryPath:
    def test_always_failing_partition_is_unreadable(self, small_table):
        manager, store = faulty_manager(
            small_table,
            overrides={"p000000.jig": FaultConfig(transient_error_rate=1.0)},
        )
        with pytest.raises(PartitionUnreadableError) as excinfo:
            manager.load(0)
        policy = manager.retry_policy
        assert excinfo.value.pid == 0
        assert store.stats.n_transient_errors == policy.max_attempts
        delta = excinfo.value.io_delta
        assert delta is not None
        assert delta.n_retries == policy.max_attempts - 1
        # Backoff is simulated time on the delta, never a real sleep.
        expected_backoff = sum(
            policy.delay_s(k) for k in range(policy.max_attempts - 1)
        )
        assert delta.io_time_s == pytest.approx(expected_backoff)

    def test_transient_fault_recovers_within_retries(self, small_table):
        # At rate 0.5 the deterministic draws for this (seed, key) fail some
        # attempts and pass others; 3 attempts are enough to get through.
        manager, store = faulty_manager(
            small_table,
            overrides={"p000000.jig": FaultConfig(transient_error_rate=0.5)},
            policy=RetryPolicy(max_attempts=10),
        )
        partition, delta = manager.load(0)
        assert partition.pid == 0
        assert store.stats.n_transient_errors >= 0
        assert delta.bytes_read > 0

    def test_corrupt_read_retries_then_succeeds(self, small_table):
        """A bit-flip on attempt 0 is caught by the checksum; the retry sees
        the pristine blob (faults only corrupt the returned copy)."""
        manager, store = faulty_manager(small_table)
        # Force exactly one corrupted attempt for partition 0 by flipping the
        # override off after the first get.
        key = "p000000.jig"
        store.overrides[key] = FaultConfig(corruption_rate=1.0)
        original_get = store.get

        def get_once(k):
            data = original_get(k)
            if k == key:
                store.overrides.pop(key, None)
            return data

        store.get = get_once
        partition, delta = manager.load(0)
        assert partition.pid == 0
        assert delta.n_retries == 1
        assert store.stats.n_bit_flips == 1

    def test_latency_spikes_charge_io_time(self, small_table):
        manager, _store = faulty_manager(
            small_table,
            config=FaultConfig(latency_spike_rate=1.0, latency_spike_s=0.25),
        )
        _partition, delta = manager.load(0)
        assert delta.io_time_s >= 0.25

    def test_missing_blob_is_unreadable_not_keyerror(self, small_table):
        manager, store = faulty_manager(small_table)
        store.inner.delete("p000000.jig")
        with pytest.raises(PartitionUnreadableError):
            manager.load(0)


class TestAccountingInvariance:
    """The v2 checksums must not change any simulated figure (Fig 6/11)."""

    def test_accounted_bytes_equal_v1_file_size(self, schema_partition):
        schema, physical, data = schema_partition
        v1 = serialize_partition(physical, schema, version=1)
        overhead = checksum_overhead(len(physical.segments))
        assert len(data) == len(v1) + overhead
        assert FORMAT_VERSION == 2

    def test_load_charges_v1_equivalent_bytes(self, small_table):
        manager, store = faulty_manager(small_table)
        for pid in manager.pids():
            info = manager.info(pid)
            physical_size = store.size(info.key)
            n_segments = len(info.segment_tids)
            assert info.n_bytes == physical_size - checksum_overhead(n_segments)
            _partition, delta = manager.load(pid)
            assert delta.bytes_read == info.n_bytes

    def test_v1_files_still_readable(self, schema_partition):
        schema, physical, _data = schema_partition
        v1 = serialize_partition(physical, schema, version=1)
        restored = deserialize_partition(
            v1, schema, catalog_tids={0: physical.segments[0].tuple_ids}
        )
        assert restored.pid == physical.pid
        seg = restored.segments[0]
        assert np.array_equal(
            seg.columns["a1"], physical.segments[0].columns["a1"]
        )


class TestChecksumDetection:
    def test_every_byte_position_is_protected(self, schema_partition):
        """Flipping any single bit anywhere in the file must be detected."""
        schema, physical, data = schema_partition
        rng = np.random.default_rng(0)
        tids = {0: physical.segments[0].tuple_ids}
        for position in rng.choice(len(data) * 8, size=64, replace=False):
            corrupted = bytearray(data)
            corrupted[position // 8] ^= 1 << (position % 8)
            with pytest.raises(StorageError):
                deserialize_partition(bytes(corrupted), schema, catalog_tids=tids)

    def test_checksum_error_names_segment(self, schema_partition):
        schema, physical, data = schema_partition
        corrupted = bytearray(data)
        corrupted[-1] ^= 0xFF  # last cell byte: inside segment #0's body
        with pytest.raises(ChecksumError, match="segment #0"):
            deserialize_partition(
                bytes(corrupted), schema,
                catalog_tids={0: physical.segments[0].tuple_ids},
            )
