"""Unit tests for the binary partition file format (Figure 4)."""

import numpy as np
import pytest

from repro.core import AttributeSpec, TableSchema
from repro.errors import StorageError
from repro.storage import (
    PhysicalPartition,
    PhysicalSegment,
    TID_CATALOG,
    TID_EXPLICIT,
    TID_IMPLICIT,
    deserialize_partition,
    segment_row_dtype,
    serialize_partition,
)


@pytest.fixture()
def schema():
    return TableSchema(
        [
            AttributeSpec("k", 8, "int64"),
            AttributeSpec("v", 4, "int32"),
            AttributeSpec("comment", 20, "int32"),  # padded width
            AttributeSpec("x", 8, "float64", integer=False),
        ]
    )


def make_segment(schema, attrs, tids, tid_storage=TID_EXPLICIT, seed=0):
    rng = np.random.default_rng(seed)
    columns = {}
    for name in attrs:
        dtype = schema[name].np_dtype
        if dtype == "float64":
            columns[name] = rng.random(len(tids))
        else:
            columns[name] = rng.integers(0, 1000, len(tids)).astype(dtype)
    return PhysicalSegment(
        attributes=tuple(attrs),
        tuple_ids=np.asarray(tids, dtype=np.int64),
        columns=columns,
        tid_storage=tid_storage,
    )


class TestRowDtype:
    def test_itemsize_uses_logical_widths(self, schema):
        dtype = segment_row_dtype(schema, ("k", "comment"))
        assert dtype.itemsize == 28

    def test_field_offsets_are_cumulative(self, schema):
        dtype = segment_row_dtype(schema, ("v", "comment", "x"))
        assert dtype.fields["v"][1] == 0
        assert dtype.fields["comment"][1] == 4
        assert dtype.fields["x"][1] == 24


class TestRoundtrip:
    def test_explicit_tids(self, schema):
        segment = make_segment(schema, ["k", "x"], [5, 9, 17])
        partition = PhysicalPartition(3, [segment])
        data = serialize_partition(partition, schema)
        restored = deserialize_partition(data, schema)
        assert restored.pid == 3
        out = restored.segments[0]
        assert out.attributes == ("k", "x")
        assert np.array_equal(out.tuple_ids, [5, 9, 17])
        assert np.array_equal(out.columns["k"], segment.columns["k"])
        assert np.allclose(out.columns["x"], segment.columns["x"])

    def test_implicit_tids(self, schema):
        segment = make_segment(schema, ["v"], [100, 101, 102], TID_IMPLICIT)
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        restored = deserialize_partition(data, schema)
        assert np.array_equal(restored.segments[0].tuple_ids, [100, 101, 102])

    def test_catalog_tids_come_from_caller(self, schema):
        segment = make_segment(schema, ["v"], [7, 3, 99], TID_CATALOG)
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        restored = deserialize_partition(
            data, schema, catalog_tids={0: np.array([7, 3, 99], np.int64)}
        )
        assert np.array_equal(restored.segments[0].tuple_ids, [7, 3, 99])

    def test_catalog_tids_missing_raises(self, schema):
        segment = make_segment(schema, ["v"], [7, 3], TID_CATALOG)
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        with pytest.raises(StorageError):
            deserialize_partition(data, schema)

    def test_multiple_segments(self, schema):
        segments = [
            make_segment(schema, ["k", "v", "comment", "x"], [0, 1]),
            make_segment(schema, ["v"], [2, 3, 4], seed=1),
        ]
        data = serialize_partition(PhysicalPartition(1, segments), schema)
        restored = deserialize_partition(data, schema)
        assert len(restored.segments) == 2
        assert restored.segments[1].attributes == ("v",)

    def test_empty_segment(self, schema):
        segment = make_segment(schema, ["v"], [])
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        restored = deserialize_partition(data, schema)
        assert restored.segments[0].n_tuples == 0

    def test_file_size_includes_padding(self, schema):
        """A 'comment' cell must really occupy 20 bytes on disk."""
        narrow = make_segment(schema, ["v"], [0, 1, 2])
        wide = make_segment(schema, ["comment"], [0, 1, 2])
        narrow_size = len(serialize_partition(PhysicalPartition(0, [narrow]), schema))
        wide_size = len(serialize_partition(PhysicalPartition(0, [wide]), schema))
        assert wide_size - narrow_size == 3 * (20 - 4)


class TestCorruption:
    def test_bad_magic(self, schema):
        segment = make_segment(schema, ["v"], [0])
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        with pytest.raises(StorageError):
            deserialize_partition(b"XXXX" + data[4:], schema)

    def test_truncated_header(self, schema):
        with pytest.raises(StorageError):
            deserialize_partition(b"JG", schema)

    def test_truncated_cells(self, schema):
        segment = make_segment(schema, ["comment"], [0, 1, 2])
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        with pytest.raises(StorageError):
            deserialize_partition(data[:-8], schema)

    def test_schema_mismatch(self, schema):
        segment = make_segment(schema, ["v"], [0])
        data = serialize_partition(PhysicalPartition(0, [segment]), schema)
        other = TableSchema.uniform(["a", "b"])
        with pytest.raises(StorageError):
            deserialize_partition(data, other)
