"""Unit tests for the partition manager and its two indexes."""

import numpy as np
import pytest

from repro.core import CostModel, IOModel, JigsawPartitioner, PartitionerConfig
from repro.errors import PartitionNotFoundError, StorageError
from repro.storage import (
    BALOS_HDD,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    checksum_overhead,
)


@pytest.fixture()
def manager(small_table):
    device = StorageDevice(BALOS_HDD)
    return PartitionManager(small_table.schema, device)


def materialize_two_partitions(manager, small_table):
    n = small_table.n_tuples
    first_half = np.arange(n // 2, dtype=np.int64)
    second_half = np.arange(n // 2, n, dtype=np.int64)
    manager.materialize_specs(
        [
            [SegmentSpec(("a1", "a2"), first_half)],
            [SegmentSpec(("a1", "a3"), second_half)],
        ],
        small_table,
        tid_storage=TID_CATALOG,
    )


class TestMaterializeAndLoad:
    def test_load_roundtrip_charges_io(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        partition, io_delta = manager.load(0)
        assert io_delta.io_time_s > 0
        assert io_delta.bytes_read == manager.info(0).n_bytes
        assert manager.device.stats.bytes_read == manager.info(0).n_bytes
        segment = partition.segments[0]
        assert np.array_equal(
            segment.columns["a1"], small_table.column("a1")[segment.tuple_ids]
        )

    def test_unknown_pid_raises(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        with pytest.raises(PartitionNotFoundError):
            manager.load(99)
        with pytest.raises(PartitionNotFoundError):
            manager.info(99)

    def test_total_bytes_matches_store(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        # The catalog accounts v1-equivalent sizes so the simulated I/O cost
        # of a layout is unchanged by the v2 checksums; physical files are
        # bigger by exactly the per-partition CRC overhead.
        overhead = sum(
            checksum_overhead(len(manager.info(pid).segment_tids))
            for pid in manager.pids()
        )
        assert manager.total_bytes() + overhead == manager.store.total_bytes()

    def test_materialize_plan_covers_all_cells(self, small_table, small_workload):
        cost_model = CostModel(small_table.meta, IOModel.from_throughput(75, 0.001))
        tuner = JigsawPartitioner(
            cost_model,
            PartitionerConfig(min_size=1024, max_size=1 << 20, selection_enabled=False),
        )
        plan = tuner.partition(small_table.meta, small_workload)
        manager = PartitionManager(small_table.schema, StorageDevice(BALOS_HDD))
        infos = manager.materialize_plan(plan, small_table)
        cells = sum(
            len(attrs) * len(tids)
            for info in infos
            for attrs, tids in zip(info.segment_attrs, info.segment_tids)
        )
        assert cells == small_table.n_tuples * len(small_table.schema)


class TestIndexes:
    def test_attribute_level_index(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        assert set(manager.partitions_for_attribute("a1")) == {0, 1}
        assert manager.partitions_for_attribute("a2") == (0,)
        assert manager.partitions_for_attribute("a3") == (1,)
        assert manager.partitions_for_attribute("a6") == ()

    def test_partitions_for_attributes_union(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        assert manager.partitions_for_attributes(["a2", "a3"]) == (0, 1)

    def test_tuple_level_index(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        n = small_table.n_tuples
        low_tids = np.array([0, 1], np.int64)
        high_tids = np.array([n - 1], np.int64)
        assert manager.partitions_with_missing_cells("a2", low_tids) == (0,)
        assert manager.partitions_with_missing_cells("a2", high_tids) == ()
        assert manager.partitions_with_missing_cells("a3", high_tids) == (1,)

    def test_tuple_index_with_empty_request(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        empty = np.empty(0, np.int64)
        assert manager.partitions_with_missing_cells("a1", empty) == ()

    def test_info_exposes_zone_maps(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        info = manager.info(0)
        lo, hi = info.zone_map["a1"]
        half = small_table.column("a1")[: small_table.n_tuples // 2]
        assert lo == half.min() and hi == half.max()


def _physical_halves(small_table, pids=(0, 1)):
    from repro.storage import TID_EXPLICIT, build_physical_partition

    n = small_table.n_tuples
    first = np.arange(n // 2, dtype=np.int64)
    second = np.arange(n // 2, n, dtype=np.int64)
    return (
        build_physical_partition(
            pids[0], [SegmentSpec(("a1", "a2"), first)], small_table, TID_EXPLICIT
        ),
        build_physical_partition(
            pids[1], [SegmentSpec(("a1", "a3"), second)], small_table, TID_EXPLICIT
        ),
    )


class TestSwapPartitions:
    def test_swap_bumps_version_once(self, manager, small_table):
        left, right = _physical_halves(small_table)
        infos = manager.swap_partitions([left, right])
        assert manager.catalog_version == 1
        assert [info.version for info in infos] == [1, 1]

    def test_swap_retires_removed_pids(self, manager, small_table):
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left, right])
        replacement, _ = _physical_halves(small_table, pids=(2, 3))
        replacement = type(replacement)(
            pid=2, segments=replacement.segments
        )
        manager.swap_partitions([replacement], remove=[0, 1])
        assert manager.pids() == (2,)
        assert manager.retired_pids() == (0, 1)
        # Retired partitions stay readable for in-flight queries...
        assert manager.info(0).pid == 0
        partition, _delta = manager.load(0)
        assert partition.pid == 0
        # ...but vanish from every index new plans consult.
        assert 0 not in manager.partitions_for_attribute("a2")
        assert manager.partitions_for_attribute("a2") == (2,)

    def test_swap_rejects_duplicate_added_pids(self, manager, small_table):
        from repro.errors import InvalidPartitioningError

        left, _right = _physical_halves(small_table)
        with pytest.raises(InvalidPartitioningError):
            manager.swap_partitions([left, left])

    def test_in_place_replace_is_not_retired(self, manager, small_table):
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left, right])
        manager.replace_partition(left)
        assert manager.retired_pids() == ()
        assert manager.catalog_version == 2
        assert manager.info(0).version == 2

    def test_prune_retired_reclaims_blobs(self, manager, small_table):
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left, right])
        fresh, _ = _physical_halves(small_table, pids=(2, 3))
        manager.swap_partitions([fresh], remove=[0, 1])
        keys = {manager.info(pid).key for pid in (0, 1)}
        assert manager.prune_retired() == 2
        assert manager.retired_pids() == ()
        remaining = set(manager.store.keys())
        assert not (keys & remaining)
        with pytest.raises(PartitionNotFoundError):
            manager.info(0)

    def test_prune_retired_respects_version_floor(self, manager, small_table):
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left, right])           # version 1
        fresh0, _ = _physical_halves(small_table, pids=(2, 3))
        manager.swap_partitions([fresh0], remove=[0])    # version 2, retires 0
        fresh1, _ = _physical_halves(small_table, pids=(3, 4))
        manager.swap_partitions([fresh1], remove=[1])    # version 3, retires 1
        # Retired entries are stamped with the version that retired them:
        # pruning below the current version spares the latest swap's retiree
        # (pid 1, retired at v3) so in-flight v2 readers can finish.
        assert manager.info(0).version == 2 and manager.info(1).version == 3
        assert manager.prune_retired(before_version=3) == 1
        assert manager.retired_pids() == (1,)
        assert manager.prune_retired() == 1
        assert manager.retired_pids() == ()

    def test_next_pid_skips_retired(self, manager, small_table):
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left, right])
        fresh, _ = _physical_halves(small_table, pids=(2, 3))
        manager.swap_partitions([fresh], remove=[0, 1])
        assert manager.next_pid() == 3

    def test_failed_staging_rolls_back_new_blobs(self, manager, small_table):
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left])
        n_keys_before = len(list(manager.store.keys()))

        put = manager.store.put
        calls = {"n": 0}

        def failing_put(key, data):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise StorageError("disk full")
            put(key, data)

        manager.store.put = failing_put
        fresh_left, fresh_right = _physical_halves(small_table, pids=(5, 6))
        with pytest.raises(StorageError):
            manager.swap_partitions([fresh_left, fresh_right], remove=[0])
        manager.store.put = put
        # Old catalog fully intact; the staged pid-5 blob was rolled back.
        assert manager.pids() == (0,)
        assert manager.retired_pids() == ()
        assert manager.catalog_version == 1
        assert len(list(manager.store.keys())) == n_keys_before
        partition, _delta = manager.load(0)
        assert partition.pid == 0

    def test_verify_failure_aborts_and_keeps_old_layout(self, small_table):
        from repro.storage import FaultConfig, FaultInjectingBlobStore, MemoryBlobStore

        device = StorageDevice(BALOS_HDD)
        inner = MemoryBlobStore()
        manager = PartitionManager(small_table.schema, device, store=inner)
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left])
        # Every get of the would-be pid-7 key fails: verification must abort.
        key = manager._key(7)
        manager.store = FaultInjectingBlobStore(
            inner, seed=1,
            overrides={key: FaultConfig(transient_error_rate=1.0)},
        )
        fresh = type(right)(pid=7, segments=right.segments)
        with pytest.raises(StorageError, match="read-back verification"):
            manager.swap_partitions([fresh], remove=[0], verify=True)
        assert manager.pids() == (0,)
        assert manager.retired_pids() == ()
        assert key not in set(inner.keys())

    def test_swap_invalidates_buffer_pool(self, small_table):
        from repro.storage import BufferPool

        device = StorageDevice(BALOS_HDD)
        manager = PartitionManager(
            small_table.schema, device, buffer_pool=BufferPool(1 << 20)
        )
        left, right = _physical_halves(small_table)
        manager.swap_partitions([left, right])
        manager.load(0)
        assert manager.buffer_pool.get(0) is not None
        manager.replace_partition(left)
        assert manager.buffer_pool.get(0) is None
