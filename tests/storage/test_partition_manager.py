"""Unit tests for the partition manager and its two indexes."""

import numpy as np
import pytest

from repro.core import CostModel, IOModel, JigsawPartitioner, PartitionerConfig
from repro.errors import PartitionNotFoundError
from repro.storage import (
    BALOS_HDD,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
    checksum_overhead,
)


@pytest.fixture()
def manager(small_table):
    device = StorageDevice(BALOS_HDD)
    return PartitionManager(small_table.schema, device)


def materialize_two_partitions(manager, small_table):
    n = small_table.n_tuples
    first_half = np.arange(n // 2, dtype=np.int64)
    second_half = np.arange(n // 2, n, dtype=np.int64)
    manager.materialize_specs(
        [
            [SegmentSpec(("a1", "a2"), first_half)],
            [SegmentSpec(("a1", "a3"), second_half)],
        ],
        small_table,
        tid_storage=TID_CATALOG,
    )


class TestMaterializeAndLoad:
    def test_load_roundtrip_charges_io(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        partition, io_delta = manager.load(0)
        assert io_delta.io_time_s > 0
        assert io_delta.bytes_read == manager.info(0).n_bytes
        assert manager.device.stats.bytes_read == manager.info(0).n_bytes
        segment = partition.segments[0]
        assert np.array_equal(
            segment.columns["a1"], small_table.column("a1")[segment.tuple_ids]
        )

    def test_unknown_pid_raises(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        with pytest.raises(PartitionNotFoundError):
            manager.load(99)
        with pytest.raises(PartitionNotFoundError):
            manager.info(99)

    def test_total_bytes_matches_store(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        # The catalog accounts v1-equivalent sizes so the simulated I/O cost
        # of a layout is unchanged by the v2 checksums; physical files are
        # bigger by exactly the per-partition CRC overhead.
        overhead = sum(
            checksum_overhead(len(manager.info(pid).segment_tids))
            for pid in manager.pids()
        )
        assert manager.total_bytes() + overhead == manager.store.total_bytes()

    def test_materialize_plan_covers_all_cells(self, small_table, small_workload):
        cost_model = CostModel(small_table.meta, IOModel.from_throughput(75, 0.001))
        tuner = JigsawPartitioner(
            cost_model,
            PartitionerConfig(min_size=1024, max_size=1 << 20, selection_enabled=False),
        )
        plan = tuner.partition(small_table.meta, small_workload)
        manager = PartitionManager(small_table.schema, StorageDevice(BALOS_HDD))
        infos = manager.materialize_plan(plan, small_table)
        cells = sum(
            len(attrs) * len(tids)
            for info in infos
            for attrs, tids in zip(info.segment_attrs, info.segment_tids)
        )
        assert cells == small_table.n_tuples * len(small_table.schema)


class TestIndexes:
    def test_attribute_level_index(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        assert set(manager.partitions_for_attribute("a1")) == {0, 1}
        assert manager.partitions_for_attribute("a2") == (0,)
        assert manager.partitions_for_attribute("a3") == (1,)
        assert manager.partitions_for_attribute("a6") == ()

    def test_partitions_for_attributes_union(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        assert manager.partitions_for_attributes(["a2", "a3"]) == (0, 1)

    def test_tuple_level_index(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        n = small_table.n_tuples
        low_tids = np.array([0, 1], np.int64)
        high_tids = np.array([n - 1], np.int64)
        assert manager.partitions_with_missing_cells("a2", low_tids) == (0,)
        assert manager.partitions_with_missing_cells("a2", high_tids) == ()
        assert manager.partitions_with_missing_cells("a3", high_tids) == (1,)

    def test_tuple_index_with_empty_request(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        empty = np.empty(0, np.int64)
        assert manager.partitions_with_missing_cells("a1", empty) == ()

    def test_info_exposes_zone_maps(self, manager, small_table):
        materialize_two_partitions(manager, small_table)
        info = manager.info(0)
        lo, hi = info.zone_map["a1"]
        half = small_table.column("a1")[: small_table.n_tuples // 2]
        assert lo == half.min() and hi == half.max()
