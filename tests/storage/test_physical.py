"""Unit tests for physical materialization (Figure 3's logical -> physical)."""

import numpy as np
import pytest

from repro.core import Partition, Segment
from repro.errors import InvalidPartitioningError
from repro.storage import (
    PhysicalSegment,
    SegmentSpec,
    TID_CATALOG,
    TID_EXPLICIT,
    TID_IMPLICIT,
    build_physical_partition,
    physical_from_logical,
)


class TestPhysicalSegment:
    def test_validates_column_lengths(self, small_table):
        with pytest.raises(InvalidPartitioningError):
            PhysicalSegment(
                attributes=("a1",),
                tuple_ids=np.array([0, 1], np.int64),
                columns={"a1": np.zeros(3, np.int32)},
            )

    def test_implicit_requires_contiguous_run(self):
        with pytest.raises(InvalidPartitioningError):
            PhysicalSegment(
                attributes=("a1",),
                tuple_ids=np.array([0, 2], np.int64),
                columns={"a1": np.zeros(2, np.int32)},
                tid_storage=TID_IMPLICIT,
            )

    def test_disk_bytes_counts_tids_only_when_explicit(self, small_table):
        tids = np.arange(10, dtype=np.int64)
        columns = {"a1": small_table.column("a1")[:10]}
        explicit = PhysicalSegment(("a1",), tids, columns, TID_EXPLICIT)
        implicit = PhysicalSegment(("a1",), tids, columns, TID_IMPLICIT)
        schema = small_table.schema
        assert explicit.disk_bytes(schema) == 10 * (4 + 8)
        assert implicit.disk_bytes(schema) == 10 * 4


class TestBuildFromSpecs:
    def test_same_schema_specs_coalesce(self, small_table):
        """Figure 3: tuples with the same attributes share a physical segment."""
        specs = [
            SegmentSpec(("a1", "a2"), np.array([0, 1], np.int64)),
            SegmentSpec(("a2", "a1"), np.array([5, 6], np.int64)),
            SegmentSpec(("a3",), np.array([2], np.int64)),
        ]
        partition = build_physical_partition(0, specs, small_table)
        assert len(partition.segments) == 2
        merged = partition.segments[0]
        assert merged.attributes == ("a1", "a2")
        assert np.array_equal(merged.tuple_ids, [0, 1, 5, 6])

    def test_attribute_order_follows_schema(self, small_table):
        specs = [SegmentSpec(("a3", "a1"), np.array([0], np.int64))]
        partition = build_physical_partition(0, specs, small_table)
        assert partition.segments[0].attributes == ("a1", "a3")

    def test_values_match_source_table(self, small_table):
        tids = np.array([3, 7, 11], np.int64)
        partition = build_physical_partition(
            0, [SegmentSpec(("a2",), tids)], small_table
        )
        assert np.array_equal(
            partition.segments[0].columns["a2"], small_table.column("a2")[tids]
        )

    def test_implicit_demoted_to_catalog_for_permuted_tids(self, small_table):
        specs = [SegmentSpec(("a1",), np.array([5, 2, 9], np.int64))]
        partition = build_physical_partition(0, specs, small_table, TID_IMPLICIT)
        # unique() sorts, but [2, 5, 9] is not contiguous -> catalog
        assert partition.segments[0].tid_storage == TID_CATALOG

    def test_zone_map(self, small_table):
        tids = np.arange(100, dtype=np.int64)
        partition = build_physical_partition(
            0, [SegmentSpec(("a1",), tids)], small_table
        )
        lo, hi = partition.zone_map()["a1"]
        column = small_table.column("a1")[:100]
        assert lo == column.min() and hi == column.max()

    def test_empty_partition_rejected(self, small_table):
        with pytest.raises(InvalidPartitioningError):
            build_physical_partition(0, [], small_table)


class TestPhysicalFromLogical:
    def test_box_membership(self, small_table):
        """Tuples are assigned by the tight range box, matching the data."""
        from repro.core.ranges import Interval

        box = small_table.meta.full_range().replace("a1", Interval(0, 4_999))
        segment = Segment(("a2",), 1.0, box, tight=frozenset({"a1"}))
        partition = Partition(0, (segment,))
        physical = physical_from_logical(partition, small_table)
        expected = np.nonzero(small_table.column("a1") <= 4_999)[0]
        assert np.array_equal(physical.segments[0].tuple_ids, expected)

    def test_sibling_boxes_partition_the_table(self, small_table):
        from repro.core import horizontal_split

        root = Segment(
            ("a2",), float(small_table.n_tuples), small_table.meta.full_range()
        )
        units = small_table.schema.units()
        lower, upper = horizontal_split(root, "a1", 4_999, units)
        p_low = physical_from_logical(Partition(0, (lower,)), small_table)
        p_high = physical_from_logical(Partition(1, (upper,)), small_table)
        combined = np.concatenate(
            [p_low.segments[0].tuple_ids, p_high.segments[0].tuple_ids]
        )
        assert len(np.unique(combined)) == small_table.n_tuples

    def test_empty_match_produces_placeholder(self, small_table):
        from repro.core.ranges import Interval

        # a1 values are < 10_000; an impossible box matches nothing.
        box = small_table.meta.full_range().replace("a1", Interval(50_000, 60_000))
        segment = Segment(("a2",), 1.0, box, tight=frozenset({"a1"}))
        physical = physical_from_logical(Partition(0, (segment,)), small_table)
        assert physical.n_tuples == 0
        assert len(physical.segments) == 1
