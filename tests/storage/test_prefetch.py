"""The read-ahead pipeline: staged outcomes, accounting identity under
concurrency, and the per-key fault-latency drain regression."""

import threading

import numpy as np
import pytest

from repro.errors import PartitionUnreadableError
from repro.storage import (
    BALOS_HDD,
    FaultConfig,
    FaultInjectingBlobStore,
    MemoryBlobStore,
    PartitionManager,
    Prefetcher,
    RetryPolicy,
    SegmentSpec,
    StorageDevice,
    TID_CATALOG,
)

N_PARTITIONS = 8


def build_manager(table, store=None, policy=None):
    manager = PartitionManager(
        table.schema,
        StorageDevice(BALOS_HDD),
        store if store is not None else MemoryBlobStore(),
        retry_policy=policy,
    )
    n = table.n_tuples
    chunk = n // N_PARTITIONS
    specs = [
        [
            SegmentSpec(
                ("a1", "a2"),
                np.arange(i * chunk, (i + 1) * chunk, dtype=np.int64),
            )
        ]
        for i in range(N_PARTITIONS)
    ]
    manager.materialize_specs(specs, table, tid_storage=TID_CATALOG)
    return manager


class TestPrefetcher:
    def test_staged_outcome_matches_inline_load(self, small_table):
        store = MemoryBlobStore()
        prefetched = build_manager(small_table, store)
        inline = build_manager(small_table, MemoryBlobStore())
        pids = list(prefetched.pids())

        prefetcher = Prefetcher(prefetched, depth=4)
        try:
            prefetcher.start(pids)
            for pid in pids:
                staged = prefetcher.take(pid)
                expected_partition, expected_delta = inline.load(pid)
                if staged is None:  # claimed before a worker started it
                    partition, delta = prefetched.load(pid)
                else:
                    partition, delta = staged
                assert delta == expected_delta
                for got, want in zip(
                    partition.segments, expected_partition.segments
                ):
                    assert np.array_equal(got.tuple_ids, want.tuple_ids)
                    for name in got.attributes:
                        assert np.array_equal(got.columns[name], want.columns[name])
        finally:
            prefetcher.close()
        assert prefetcher.stats.n_submitted == len(pids)

    def test_take_unqueued_pid_returns_none(self, small_table):
        manager = build_manager(small_table)
        prefetcher = Prefetcher(manager, depth=2)
        try:
            assert prefetcher.take(3) is None
            prefetcher.start([3])
            outcome = prefetcher.take(3)
            if outcome is not None:
                partition, _delta = outcome
                assert partition.pid == 3
            # A consumed (or discarded) entry never serves twice.
            assert prefetcher.take(3) is None
        finally:
            prefetcher.close()

    def test_queued_but_unstarted_pid_is_discarded(self, small_table):
        manager = build_manager(small_table)
        # depth=1 with one worker: the worker stages pid 0 and then blocks
        # on the occupied slot, so the rest of the queue stays QUEUED.
        prefetcher = Prefetcher(manager, depth=1, n_threads=1)
        try:
            pids = list(manager.pids())
            prefetcher.start(pids)
            # Wait for the head of the queue to stage; the single depth slot
            # then stays occupied, so the rest of the queue cannot start.
            deadline = 200
            while prefetcher.stats.n_loaded == 0 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            first = prefetcher.take(pids[0])
            assert first is not None  # staged, then claimed
            # Claim the tail ahead of the pipeline: with the depth slot held
            # by the next staged entry, the tail is still queued and must be
            # discarded (inline load), never block.
            assert prefetcher.take(pids[-1]) is None
        finally:
            prefetcher.close()
        assert prefetcher.stats.n_discarded >= 1
        assert (
            prefetcher.stats.n_consumed + prefetcher.stats.n_discarded
            <= prefetcher.stats.n_submitted
        )

    def test_stale_catalog_version_discards_staged_entry(self, small_table):
        manager = build_manager(small_table)
        prefetcher = Prefetcher(manager, depth=2)
        try:
            prefetcher.start([0])
            # Force the staged entry stale: replace a *different* partition,
            # which bumps the catalog version.
            partition, _ = manager.load(1)
            manager.replace_partition(partition)
            outcome = prefetcher.take(0)
            # Either the worker had not started (discard) or the staged file
            # went stale (discard); both fall back to an inline load.
            assert outcome is None
        finally:
            prefetcher.close()
        fresh, _delta = manager.load(0)
        assert fresh.pid == 0

    def test_staged_error_reraised_with_io_delta(self, small_table):
        store = FaultInjectingBlobStore(MemoryBlobStore())
        manager = build_manager(
            small_table, store, policy=RetryPolicy(max_attempts=2)
        )
        store.overrides[manager.info(0).key] = FaultConfig(
            transient_error_rate=1.0
        )
        prefetcher = Prefetcher(manager, depth=2)
        try:
            prefetcher.start([0])
            with pytest.raises(PartitionUnreadableError) as excinfo:
                while prefetcher.take(0) is None:
                    # Claimed before the worker started: load inline, which
                    # raises the same error.
                    manager.load(0)
            assert excinfo.value.io_delta is not None
            assert excinfo.value.io_delta.n_retries == 1
        finally:
            prefetcher.close()

    def test_close_discards_unconsumed_loads(self, small_table):
        manager = build_manager(small_table)
        prefetcher = Prefetcher(manager, depth=4)
        prefetcher.start(list(manager.pids()))
        prefetcher.close()
        assert prefetcher.take(0) is None
        # Closed prefetchers ignore further submissions.
        prefetcher.start([1])
        assert prefetcher.take(1) is None


@pytest.mark.slow
class TestConcurrentFaultDrain:
    def test_per_key_latency_drain_under_concurrent_readers(self, small_table):
        """Satellite regression: concurrent readers of different keys each
        drain exactly their own injected spikes — the sum of all accrued
        I/O time accounts for every injected simulated second, none lost,
        none double-drained."""
        config = FaultConfig(latency_spike_rate=0.5, latency_spike_s=0.025)
        store = FaultInjectingBlobStore(MemoryBlobStore(), config=config, seed=7)
        manager = build_manager(small_table, store)
        pids = list(manager.pids())
        n_rounds = 20
        deltas_by_thread: list = [[] for _ in pids]
        errors: list = []
        barrier = threading.Barrier(len(pids))

        def reader(index: int, pid: int) -> None:
            try:
                barrier.wait()
                for _ in range(n_rounds):
                    _partition, delta = manager.load(pid)
                    deltas_by_thread[index].append(delta)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(f"pid {pid}: {exc!r}")

        threads = [
            threading.Thread(target=reader, args=(i, pid))
            for i, pid in enumerate(pids)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        # Every injected spike was drained into exactly one load's delta.
        total_io = sum(
            delta.io_time_s
            for deltas in deltas_by_thread
            for delta in deltas
        )
        base_device = StorageDevice(BALOS_HDD)
        base_io = sum(
            base_device.read_delta(
                manager.info(pid).key, manager.info(pid).n_bytes
            ).io_time_s
            for pid in pids
            for _ in range(n_rounds)
        )
        assert store.stats.latency_injected_s > 0
        assert total_io == pytest.approx(base_io + store.stats.latency_injected_s)
        # Nothing left pending after all readers finished.
        assert store.consume_injected_latency() == 0.0

    def test_prefetcher_replays_serial_accounting_under_latency_faults(
        self, small_table
    ):
        """Background loads must accrue the same per-key spikes the serial
        inline path would (fault draws are per (seed, key, attempt))."""
        config = FaultConfig(latency_spike_rate=0.6, latency_spike_s=0.040)

        def fresh_manager():
            store = FaultInjectingBlobStore(
                MemoryBlobStore(), config=config, seed=13
            )
            return build_manager(small_table, store)

        serial = fresh_manager()
        serial_deltas = {pid: serial.load(pid)[1] for pid in serial.pids()}

        manager = fresh_manager()
        prefetcher = Prefetcher(manager, depth=4)
        try:
            pids = list(manager.pids())
            prefetcher.start(pids)
            for pid in pids:
                outcome = prefetcher.take(pid)
                if outcome is None:
                    outcome = manager.load(pid)
                _partition, delta = outcome
                assert delta == serial_deltas[pid], f"pid {pid} accounting drifted"
        finally:
            prefetcher.close()
