"""Sketch soundness (no false refutations), serialization round-trips, the
format-v2 trailer, and cost-based selection."""

import numpy as np
import pytest

from repro.storage import (
    BALOS_HDD,
    BloomSketch,
    DictSketch,
    GridSketch,
    MemoryBlobStore,
    PartitionManager,
    SegmentSpec,
    SketchSet,
    StorageDevice,
    TID_CATALOG,
    deserialize_partition,
    profile_workload,
    select_sketches,
)
from repro.storage.format import append_trailer, read_trailer, strip_trailer


class TestDictSketch:
    def test_refutes_only_empty_ranges(self):
        sketch = DictSketch("a1", np.array([2.0, 5.0, 9.0]))
        assert sketch.disjoint(3, 4)  # gap between stored values
        assert sketch.disjoint(10, 99)  # beyond the maximum
        assert sketch.disjoint(-5, 1)  # below the minimum
        assert not sketch.disjoint(5, 5)  # exact stored value
        assert not sketch.disjoint(1, 3)  # range covering a stored value
        assert not sketch.disjoint(0, 100)  # range covering everything

    def test_never_refutes_a_stored_value(self, rng):
        values = np.unique(rng.integers(0, 1000, 200)).astype(np.float64)
        sketch = DictSketch("x", values)
        for value in values:
            assert not sketch.disjoint(value, value)
            assert not sketch.disjoint(value - 0.5, value + 0.5)

    def test_round_trip(self):
        sketch = DictSketch("a1", np.array([1.0, 4.0, 7.5]))
        restored = DictSketch.from_bytes("a1", sketch.to_bytes())
        assert np.array_equal(restored.values, sketch.values)
        assert restored.disjoint(2, 3) and not restored.disjoint(7.5, 7.5)


class TestBloomSketch:
    def test_no_false_negatives(self, rng):
        distinct = np.unique(rng.integers(0, 10**6, 500)).astype(np.float64)
        sketch = BloomSketch.build("x", distinct)
        assert sketch is not None
        for value in distinct:
            assert sketch.disjoint(value, value) is None  # maybe-present

    def test_refutes_most_absent_values(self, rng):
        distinct = np.arange(0, 1000, 2).astype(np.float64)  # evens only
        sketch = BloomSketch.build("x", distinct)
        refuted = sum(bool(sketch.disjoint(v, v)) for v in range(1, 1000, 2))
        assert refuted > 400  # ~10 bits/value: false-positive rate is small

    def test_equality_only_and_integral_only(self):
        sketch = BloomSketch.build("x", np.array([1.0, 2.0, 3.0]))
        assert sketch.disjoint(10, 20) is None  # range probe: cannot judge
        assert sketch.disjoint(10.5, 10.5) is None  # non-integral probe
        assert BloomSketch.build("x", np.array([1.5, 2.0])) is None

    def test_round_trip(self):
        sketch = BloomSketch.build("x", np.arange(100).astype(np.float64))
        restored = BloomSketch.from_bytes("x", sketch.to_bytes())
        assert restored.n_bits == sketch.n_bits
        assert np.array_equal(restored.bits, sketch.bits)


class TestGridSketch:
    def test_no_false_refutation_on_random_rectangles(self, rng):
        a = rng.integers(0, 100, 400).astype(np.float64)
        b = (a * 3 + rng.integers(0, 10, 400)).astype(np.float64)  # correlated
        grid = GridSketch.build(("a", "b"), a, b)
        for _ in range(300):
            a_lo, a_hi = sorted(rng.uniform(-10, 110, 2))
            b_lo, b_hi = sorted(rng.uniform(-10, 330, 2))
            inside = (a >= a_lo) & (a <= a_hi) & (b >= b_lo) & (b <= b_hi)
            if inside.any():
                assert not grid.disjoint_rect((a_lo, a_hi), (b_lo, b_hi))

    def test_refutes_anticorrelated_rectangle(self):
        # Occupancy lives only on the diagonal; the off-diagonal corner
        # rectangle overlaps both 1-D ranges but no joint cell.
        a = np.arange(100, dtype=np.float64)
        grid = GridSketch.build(("a", "b"), a, a.copy())
        assert grid.disjoint_rect((0, 10), (80, 99))
        assert not grid.disjoint_rect((0, 10), (0, 10))

    def test_rectangle_outside_bounds_is_disjoint(self):
        grid = GridSketch.build(
            ("a", "b"),
            np.array([0.0, 10.0]),
            np.array([0.0, 10.0]),
        )
        assert grid.disjoint_rect((20, 30), (0, 10))

    def test_round_trip(self, rng):
        a = rng.uniform(0, 50, 64)
        b = rng.uniform(-5, 5, 64)
        grid = GridSketch.build(("a", "b"), a, b)
        restored = GridSketch.from_bytes(("a", "b"), grid.to_bytes())
        assert restored.bounds == pytest.approx(grid.bounds)
        assert np.array_equal(restored.occupancy, grid.occupancy)


class TestSketchSet:
    def test_round_trip_mixed_kinds(self, rng):
        sketch_set = SketchSet(
            by_attr={
                "a1": DictSketch("a1", np.array([1.0, 3.0])),
                "a2": BloomSketch.build("a2", np.arange(200).astype(np.float64)),
            },
            grids=[
                GridSketch.build(
                    ("a1", "a2"),
                    rng.uniform(0, 10, 50),
                    rng.uniform(0, 10, 50),
                )
            ],
        )
        restored = SketchSet.from_bytes(sketch_set.to_bytes())
        assert set(restored.by_attr) == {"a1", "a2"}
        assert restored.by_attr["a1"].kind == "dict"
        assert restored.by_attr["a2"].kind == "bloom"
        assert len(restored.grids) == 1
        assert restored.grids[0].attributes == ("a1", "a2")
        assert restored.size_bytes() == sketch_set.size_bytes()
        assert restored.refuting_sketch("a1", 2, 2) == "dict"
        assert restored.refuting_sketch("a1", 3, 3) is None

    def test_refuting_grid_requires_both_attributes(self):
        grid = GridSketch.build(
            ("a", "b"), np.arange(10.0), np.arange(10.0)
        )
        sketch_set = SketchSet(grids=[grid])
        assert sketch_set.refuting_grid({"a": (0, 2), "b": (7, 9)}) is grid
        assert sketch_set.refuting_grid({"a": (0, 2)}) is None
        assert sketch_set.refuting_grid({"a": (0, 2), "c": (7, 9)}) is None


class TestTrailer:
    def test_append_read_strip_round_trip(self):
        data = b"\x00" * 64  # stand-in for a serialized partition body
        payload = b"sketch-bytes"
        with_trailer = append_trailer(data, payload)
        assert read_trailer(with_trailer) == payload
        assert strip_trailer(with_trailer) == data
        # Re-appending replaces rather than stacks.
        again = append_trailer(with_trailer, b"other")
        assert read_trailer(again) == b"other"
        assert strip_trailer(again) == data

    def test_corrupt_trailer_reads_as_absent(self):
        data = append_trailer(b"\x01" * 128, b"payload")
        corrupted = bytearray(data)
        corrupted[len(b"\x01" * 128) + 2] ^= 0xFF  # flip a payload byte
        assert read_trailer(bytes(corrupted)) is None
        assert read_trailer(b"\x01" * 128) is None  # no trailer at all
        assert read_trailer(b"") is None


class TestManagerSketchPersistence:
    def make_manager(self, table):
        manager = PartitionManager(
            table.schema, StorageDevice(BALOS_HDD), MemoryBlobStore()
        )
        n = table.n_tuples
        manager.materialize_specs(
            [
                [SegmentSpec(("a1", "a2"), np.arange(n // 2, dtype=np.int64))],
                [SegmentSpec(("a1", "a2"), np.arange(n // 2, n, dtype=np.int64))],
            ],
            table,
            tid_storage=TID_CATALOG,
        )
        return manager

    def test_attach_persist_and_reload(self, small_table):
        manager = self.make_manager(small_table)
        sketches = SketchSet(by_attr={"a1": DictSketch("a1", np.array([1.0, 2.0]))})
        n_bytes_before = manager.info(0).n_bytes
        manager.attach_sketches(0, sketches)
        # Accounting invariant: the trailer never inflates the charged size.
        assert manager.info(0).n_bytes == n_bytes_before

        manager.info(0).sketches = None  # drop the in-memory copy
        restored = manager.load_sketches(0)
        assert restored is not None and "a1" in restored.by_attr
        assert manager.info(0).sketches is restored
        # The sibling partition never got a trailer.
        assert manager.load_sketches(1) is None

    def test_trailer_invisible_to_partition_reads(self, small_table):
        manager = self.make_manager(small_table)
        manager.attach_sketches(
            0, SketchSet(by_attr={"a2": DictSketch("a2", np.array([5.0]))})
        )
        partition, _delta = manager.load(0)
        segment = partition.segments[0]
        tids = segment.tuple_ids
        assert np.array_equal(segment.columns["a1"], small_table.column("a1")[tids])
        data = manager.store.get(manager.info(0).key)
        bare = deserialize_partition(
            strip_trailer(data), small_table.schema, {0: tids}
        )
        assert np.array_equal(
            bare.segments[0].columns["a1"], segment.columns["a1"]
        )

    def test_corrupt_trailer_degrades_to_no_sketches(self, small_table):
        manager = self.make_manager(small_table)
        manager.attach_sketches(
            0, SketchSet(by_attr={"a1": DictSketch("a1", np.array([3.0]))})
        )
        info = manager.info(0)
        data = bytearray(manager.store.get(info.key))
        data[-1] ^= 0xFF  # wreck the trailer magic
        manager.store.put(info.key, bytes(data))
        assert manager.load_sketches(0) is None
        # The partition body itself still reads fine.
        partition, _delta = manager.load(0)
        assert partition.pid == 0

    def test_detach_removes_trailer(self, small_table):
        manager = self.make_manager(small_table)
        manager.attach_sketches(
            0, SketchSet(by_attr={"a1": DictSketch("a1", np.array([3.0]))})
        )
        manager.attach_sketches(0, None)
        assert read_trailer(manager.store.get(manager.info(0).key)) is None
        assert manager.load_sketches(0) is None


class TestSelection:
    def make_info(self, table):
        manager = PartitionManager(
            table.schema, StorageDevice(BALOS_HDD), MemoryBlobStore()
        )
        n = table.n_tuples
        manager.materialize_specs(
            [[SegmentSpec(("a1", "a2", "a3"), np.arange(n, dtype=np.int64))]],
            table,
            tid_storage=TID_CATALOG,
        )
        return manager.info(0)

    def test_profile_counts_shapes(self, small_meta):
        from repro.core import Query

        queries = [
            Query.build(small_meta, ["a2"], {"a1": (5000, 5000)}),
            Query.build(
                small_meta, ["a2"], {"a1": (4000, 6000), "a3": (1000, 2000)}
            ),
        ]
        profile = profile_workload(queries)
        assert profile.n_queries == 2
        assert profile.attr_any == {"a1": 2, "a3": 1}
        assert profile.attr_eq == {"a1": 1}
        assert profile.pairs == {("a1", "a3"): 1}

    def test_budget_respected_and_zero_budget_selects_nothing(
        self, small_table, small_workload
    ):
        info = self.make_info(small_table)
        profile = profile_workload(small_workload)
        columns = {
            name: small_table.column(name)
            for name in small_table.schema.attribute_names
        }
        assert select_sketches(info, columns, profile, 0.010, 0) is None
        chosen = select_sketches(info, columns, profile, 0.010, 4096)
        if chosen is not None:
            assert chosen.size_bytes() <= 4096
            # Only attributes the workload constrains (and the partition
            # stores) are worth sketching.
            assert set(chosen.by_attr) <= {"a1", "a2", "a3"}

    def test_unprofiled_attributes_never_sketched(self, small_table):
        from repro.core import Query

        info = self.make_info(small_table)
        profile = profile_workload(
            [Query.build(small_table.meta, ["a2"], {"a1": (7, 7)})]
        )
        columns = {
            name: small_table.column(name)
            for name in small_table.schema.attribute_names
        }
        chosen = select_sketches(info, columns, profile, 0.010, 1 << 20)
        assert chosen is not None
        assert set(chosen.by_attr) == {"a1"}
        assert not chosen.grids  # single-attribute workload: no pairs
