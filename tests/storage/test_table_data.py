"""Unit tests for the in-memory column table."""

import numpy as np
import pytest

from repro.core import TableSchema
from repro.core.ranges import RangeMap
from repro.errors import SchemaError
from repro.storage import ColumnTable


class TestBuild:
    def test_derives_ranges_from_data(self):
        schema = TableSchema.uniform(["a", "b"])
        table = ColumnTable.build(
            "t",
            schema,
            {"a": np.array([3, 1, 2], np.int32), "b": np.array([9, 9, 9], np.int32)},
        )
        assert table.meta.interval("a").lo == 1 and table.meta.interval("a").hi == 3
        assert table.meta.interval("b").lo == 9 and table.meta.interval("b").hi == 9

    def test_rejects_missing_column(self):
        schema = TableSchema.uniform(["a", "b"])
        with pytest.raises(SchemaError):
            ColumnTable.build("t", schema, {"a": np.zeros(3, np.int32)})

    def test_rejects_mismatched_lengths(self):
        schema = TableSchema.uniform(["a", "b"])
        with pytest.raises(SchemaError):
            ColumnTable.build(
                "t", schema, {"a": np.zeros(3, np.int32), "b": np.zeros(4, np.int32)}
            )

    def test_rejects_two_dimensional_column(self):
        schema = TableSchema.uniform(["a"])
        from repro.core import TableMeta

        meta = TableMeta.from_bounds("t", schema, 2, {"a": (0, 1)})
        with pytest.raises(SchemaError):
            ColumnTable(meta, {"a": np.zeros((2, 2), np.int32)})

    def test_empty_table(self):
        schema = TableSchema.uniform(["a"])
        table = ColumnTable.build("t", schema, {"a": np.zeros(0, np.int32)})
        assert table.n_tuples == 0


class TestAccess:
    def test_gather(self, small_table):
        tids = np.array([0, 10, 20])
        gathered = small_table.gather(["a1", "a2"], tids)
        assert np.array_equal(gathered["a1"], small_table.column("a1")[tids])

    def test_unknown_column_raises(self, small_table):
        with pytest.raises(SchemaError):
            small_table.column("zzz")

    def test_mask_for_box_only_uses_tight_attributes(self, small_table):
        box = RangeMap.from_bounds(
            {name: (0, 9_999) for name in small_table.schema.attribute_names}
        ).replace("a1", __import__("repro.core.ranges", fromlist=["Interval"]).Interval(0, 4_999))
        mask = small_table.mask_for_box(box, tight=["a1"])
        expected = small_table.column("a1") <= 4_999
        assert np.array_equal(mask, expected)

    def test_mask_for_box_conjunction(self, small_table):
        from repro.core.ranges import Interval

        box = RangeMap.from_bounds(
            {name: (0, 9_999) for name in small_table.schema.attribute_names}
        )
        box = box.replace("a1", Interval(0, 4_999)).replace("a2", Interval(5_000, 9_999))
        mask = small_table.mask_for_box(box, tight=["a1", "a2"])
        expected = (small_table.column("a1") <= 4_999) & (small_table.column("a2") >= 5_000)
        assert np.array_equal(mask, expected)

    def test_sizeof_uses_schema_widths(self, small_table):
        assert small_table.sizeof() == 5_000 * 6 * 4
