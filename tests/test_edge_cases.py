"""Edge cases across modules: empty results, degenerate tables, stats
plumbing, cache/overwrite interplay, and prefix-keyed managers."""

import numpy as np
import pytest

from repro.core import Query, TableSchema, Workload
from repro.engine import PartitionAtATimeExecutor, ScanExecutor
from repro.layouts import BuildContext, ColumnLayout, IrregularLayout, RowLayout
from repro.storage import (
    BALOS_HDD,
    ColumnTable,
    IOStats,
    PartitionManager,
    SegmentSpec,
    StorageDevice,
    TID_EXPLICIT,
)


class TestIOStats:
    def test_diff(self):
        later = IOStats(n_reads=5, bytes_read=100, io_time_s=2.0, n_cache_hits=1)
        earlier = IOStats(n_reads=2, bytes_read=40, io_time_s=0.5)
        delta = later.diff(earlier)
        assert delta.n_reads == 3
        assert delta.bytes_read == 60
        assert delta.io_time_s == pytest.approx(1.5)
        assert delta.n_cache_hits == 1

    def test_copy_is_independent(self):
        original = IOStats(n_reads=1)
        copy = original.copy()
        copy.n_reads = 99
        assert original.n_reads == 1

    def test_add(self):
        total = IOStats()
        total.add(IOStats(bytes_read=10, n_writes=2))
        total.add(IOStats(bytes_read=5, bytes_written=7))
        assert total.bytes_read == 15
        assert total.n_writes == 2
        assert total.bytes_written == 7


class TestDegenerateTables:
    def test_single_tuple_table_all_layouts(self):
        schema = TableSchema.uniform(["x", "y"])
        table = ColumnTable.build(
            "t", schema, {"x": np.array([7], np.int32), "y": np.array([3], np.int32)}
        )
        query = Query.build(table.meta, ["y"], {"x": (7, 7)})
        train = Workload(table.meta, [query])
        ctx = BuildContext(file_segment_bytes=1024)
        for builder in (RowLayout(), ColumnLayout(), IrregularLayout(selection_enabled=False)):
            layout = builder.build(table, train, ctx)
            result, _stats = layout.execute(query)
            assert result.n_tuples == 1
            assert result.column("y")[0] == 3

    def test_single_attribute_table(self):
        schema = TableSchema.uniform(["only"])
        table = ColumnTable.build(
            "t", schema, {"only": np.arange(100, dtype=np.int32)}
        )
        query = Query.build(table.meta, ["only"], {"only": (10, 19)})
        train = Workload(table.meta, [query])
        layout = IrregularLayout(selection_enabled=False).build(
            table, train, BuildContext(file_segment_bytes=512)
        )
        result, _stats = layout.execute(query)
        assert np.array_equal(result.column("only"), np.arange(10, 20))

    def test_constant_column(self):
        """A column with a single distinct value cannot be split on."""
        schema = TableSchema.uniform(["c", "v"])
        table = ColumnTable.build(
            "t",
            schema,
            {
                "c": np.full(500, 42, np.int32),
                "v": np.arange(500, dtype=np.int32),
            },
        )
        query = Query.build(table.meta, ["v"], {"c": (42, 42)})
        layout = IrregularLayout(selection_enabled=False).build(
            table, Workload(table.meta, [query]), BuildContext(file_segment_bytes=1024)
        )
        result, _stats = layout.execute(query)
        assert result.n_tuples == 500


class TestManagerPrefix:
    def test_key_prefix_namespaces_blobs(self, small_table):
        device = StorageDevice(BALOS_HDD)
        manager = PartitionManager(
            small_table.schema, device, key_prefix="tables/hap/"
        )
        everyone = np.arange(small_table.n_tuples, dtype=np.int64)
        manager.materialize_specs(
            [[SegmentSpec(("a1",), everyone)]], small_table, TID_EXPLICIT
        )
        assert manager.info(0).key.startswith("tables/hap/")
        assert "tables/hap/p000000.jig" in manager.store


class TestCacheOverwriteInterplay:
    def test_replace_partition_invalidates_cache(self, small_table):
        device = StorageDevice(BALOS_HDD, cache_bytes=10**7)
        manager = PartitionManager(small_table.schema, device)
        everyone = np.arange(small_table.n_tuples, dtype=np.int64)
        manager.materialize_specs(
            [[SegmentSpec(("a1", "a2"), everyone)]], small_table, TID_EXPLICIT
        )
        _p, first = manager.load(0)
        assert first.io_time_s > 0
        _p, second = manager.load(0)
        assert second.n_cache_hits == 1
        # Rewriting the partition must drop the stale cached copy.
        partition, _io = manager.load(0)
        manager.replace_partition(partition)
        _p, third = manager.load(0)
        assert third.n_cache_hits == 0
        assert third.io_time_s > 0


class TestEngineEmptiness:
    def test_scan_with_no_selected_tuples(self, small_table, small_workload, ctx):
        layout = ColumnLayout().build(small_table, small_workload, ctx)
        # Two narrow windows: their conjunction is (almost surely) empty.
        query = Query.build(
            small_table.meta, ["a2"], {"a1": (0, 50), "a4": (9_900, 9_999)}
        )
        result, stats = layout.execute(query)
        expected = int(
            ((small_table.column("a1") == 1) & (small_table.column("a4") == 2)).sum()
        )
        assert result.n_tuples == expected

    def test_jigsaw_projection_only_of_predicate_attribute(self, small_table, small_workload):
        """SELECT a1 WHERE a1 ...: everything resolves in the selection phase."""
        ctx = BuildContext(file_segment_bytes=8 * 1024)
        layout = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, ctx
        )
        query = Query.build(small_table.meta, ["a1"], {"a1": (0, 4999)})
        result, _stats = layout.execute(query)
        expected = np.sort(
            small_table.column("a1")[small_table.column("a1") <= 4999]
        )
        assert np.array_equal(np.sort(result.column("a1")), expected)


class TestWorkloadSharing:
    def test_same_manager_two_executors(self, small_table, small_workload):
        """Serial and zone-map executors share a manager without clashing."""
        ctx = BuildContext(file_segment_bytes=8 * 1024)
        layout = IrregularLayout(selection_enabled=False).build(
            small_table, small_workload, ctx
        )
        plain = PartitionAtATimeExecutor(layout.manager, small_table.meta)
        mapped = PartitionAtATimeExecutor(
            layout.manager, small_table.meta, zone_maps=True
        )
        query = small_workload[0]
        a, _s = plain.execute(query)
        b, _s = mapped.execute(query)
        assert a.equals(b)
