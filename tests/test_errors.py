"""The exception hierarchy: everything catchable via JigsawError."""

import pytest

from repro.errors import (
    CalibrationError,
    InvalidPartitioningError,
    InvalidQueryError,
    JigsawError,
    PartitionNotFoundError,
    SchemaError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CalibrationError,
            InvalidPartitioningError,
            InvalidQueryError,
            PartitionNotFoundError,
            SchemaError,
            StorageError,
        ],
    )
    def test_all_derive_from_jigsaw_error(self, exc):
        assert issubclass(exc, JigsawError)

    def test_partition_not_found_is_storage_error(self):
        assert issubclass(PartitionNotFoundError, StorageError)

    def test_library_failures_are_catchable(self, paper_table):
        from repro.core import Query

        with pytest.raises(JigsawError):
            Query.build(paper_table, [])
        from repro.core import fit_io_model

        with pytest.raises(JigsawError):
            fit_io_model([1], [1.0])
