"""Differential-oracle tests for the relational DAG.

Three layers of assurance:

* the seeded sweep (:func:`run_join_differential_oracle`) — every layout
  family x strategy x spill mode x fault injection x the threaded engine;
* hypothesis properties — random (tables, query) pairs must be
  oracle-exact under the default strategy, byte-identical between a tiny
  spill budget and no budget, and exact under injected storage faults;
* an adaptive-swap race — the join replays concurrently with an
  :class:`AdaptiveDaemon` migration and must stay oracle-exact before,
  during, and after the catalog swap.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adaptive import AdaptiveConfig, AdaptiveDaemon, AdvisorConfig
from repro.core import Query, Workload
from repro.layouts import BuildContext, IrregularLayout
from repro.plan.dag import Catalog, DagExecutor
from repro.testing.join_oracle import (
    build_join_catalog,
    join_oracle_check,
    random_join_query,
    random_join_tables,
    run_join_differential_oracle,
    run_reference_join,
)
from repro.testing.oracle import inject_faults

CTX = BuildContext(file_segment_bytes=2048, schism_sample_size=100)
IRREGULAR = lambda: IrregularLayout(zone_maps=True, selection_enabled=False)


def _case(seed: int, co_partitioned: bool = True):
    rng = np.random.default_rng(seed)
    fact, dim, fwl, dwl = random_join_tables(rng, co_partitioned=co_partitioned)
    query = random_join_query(rng, fact, dim, label=f"seed{seed}")
    return {"fact": fact, "dim": dim}, (fact, dim, fwl, dwl), query


class TestSweep:
    def test_sweep_is_oracle_exact(self):
        report = run_join_differential_oracle(n_cases=4, seed=3)
        assert report.n_cases == 4
        assert report.ok, report.summary

    @pytest.mark.slow
    def test_full_sweep(self):
        report = run_join_differential_oracle(n_cases=24, seed=0)
        assert report.ok, report.summary


class TestJoinProperties:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**31 - 1), co=st.booleans())
    def test_join_matches_reference(self, seed, co):
        tables, (fact, dim, fwl, dwl), query = _case(seed, co_partitioned=co)
        catalog = build_join_catalog(IRREGULAR, fact, dim, fwl, dwl, CTX)
        mismatch = join_oracle_check(DagExecutor(catalog), tables, query)
        assert mismatch is None, mismatch

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**31 - 1))
    def test_spill_is_byte_identical_to_unbounded(self, seed):
        tables, (fact, dim, fwl, dwl), query = _case(seed)
        catalog = build_join_catalog(IRREGULAR, fact, dim, fwl, dwl, CTX)
        unbounded, _ = DagExecutor(catalog).execute(query)
        # A budget this small forces every build side through the Grace
        # spill path; the output contract says nothing may change.
        tiny, stats = DagExecutor(catalog, spill_budget_bytes=256).execute(query)
        assert tiny.equals(unbounded)
        reference = run_reference_join(tables, query)
        assert tiny.equals(reference)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**31 - 1))
    def test_join_survives_storage_faults(self, seed):
        tables, (fact, dim, fwl, dwl), query = _case(seed)
        catalog = build_join_catalog(IRREGULAR, fact, dim, fwl, dwl, CTX)
        inject_faults(catalog["fact"], seed=seed)
        inject_faults(catalog["dim"], seed=seed + 1)
        mismatch = join_oracle_check(DagExecutor(catalog), tables, query)
        assert mismatch is None, mismatch


class TestAdaptiveSwap:
    def test_join_stays_exact_across_daemon_migration(self):
        tables, (fact, dim, fwl, dwl), _ = _case(7)
        query = random_join_query(
            np.random.default_rng(7), fact, dim, label="swap-join"
        )
        fact_layout = IRREGULAR().build(fact, fwl, CTX)
        dim_layout = IRREGULAR().build(dim, dwl, CTX)
        catalog = Catalog({"fact": fact_layout, "dim": dim_layout})
        executor = DagExecutor(catalog)
        expected = run_reference_join(tables, query)

        daemon = AdaptiveDaemon(
            fact_layout,
            fact,
            AdaptiveConfig(
                window_size=16,
                advisor=AdvisorConfig(
                    drift_threshold=0.2,
                    drift_reset=0.1,
                    min_improvement=0.0,
                    cooldown_queries=2,
                ),
                bytes_budget_per_cycle=1 << 30,
                # In-flight DAG leaves may still hold pre-swap plans.
                auto_prune=False,
            ),
        )
        # Drive drift through the observed mainline: a projection/predicate
        # mix the key-trained layout was never built for.
        meta = fact.meta
        shifted = [
            Query.build(meta, ["f_b"], {"f_a": (0, 150)}, label="S1"),
            Query.build(meta, ["f_b"], {"f_a": (250, 399)}, label="S2"),
        ]
        for _ in range(12):
            for shifted_query in shifted:
                fact_layout.execute(shifted_query)

        version_before = fact_layout.manager.catalog_version
        failures = []

        def replay():
            for _ in range(12):
                result, _ = executor.execute(query)
                if not result.equals(expected):
                    failures.append("mid-swap mismatch")

        replayer = threading.Thread(target=replay, name="join-replayer")
        replayer.start()
        cycle = daemon.run_cycle()
        replayer.join(120.0)
        assert not replayer.is_alive()
        assert not failures, failures
        # The migration must actually have fired for this to test anything.
        assert cycle.fired, cycle.reason
        assert fact_layout.manager.catalog_version > version_before
        # And the post-swap catalog still answers the join exactly.
        after, _ = executor.execute(query)
        assert after.equals(expected)
