"""Tests for workload/plan JSON persistence."""

import io

import numpy as np
import pytest

from repro.core import CostModel, IOModel, JigsawPartitioner, PartitionerConfig
from repro.errors import JigsawError
from repro.persistence import (
    load_plan,
    load_workload,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


class TestWorkloadRoundtrip:
    def test_roundtrip_preserves_queries(self, small_meta, small_workload):
        buffer = io.StringIO()
        save_workload(small_workload, buffer)
        buffer.seek(0)
        restored = load_workload(small_meta, buffer)
        assert len(restored) == len(small_workload)
        for original, copy in zip(small_workload, restored):
            assert copy.select == original.select
            assert copy.label == original.label
            assert {n: (i.lo, i.hi) for n, i in copy.where.items()} == {
                n: (i.lo, i.hi) for n, i in original.where.items()
            }

    def test_file_roundtrip(self, small_meta, small_workload, tmp_path):
        path = str(tmp_path / "workload.json")
        save_workload(small_workload, path)
        restored = load_workload(small_meta, path)
        assert len(restored) == len(small_workload)

    def test_rejects_wrong_document(self, small_meta):
        with pytest.raises(JigsawError):
            workload_from_dict(small_meta, {"format": "something-else"})


class TestPlanRoundtrip:
    @pytest.fixture()
    def tuned(self, small_table, small_workload):
        cost_model = CostModel(small_table.meta, IOModel.from_throughput(75, 1e-4))
        tuner = JigsawPartitioner(
            cost_model,
            PartitionerConfig(min_size=8 * 1024, max_size=64 * 1024, selection_enabled=False),
        )
        return tuner.partition(small_table.meta, small_workload)

    def test_structure_survives(self, small_meta, small_workload, tuned):
        data = plan_to_dict(tuned, small_workload)
        restored = plan_from_dict(small_meta, data, small_workload)
        assert restored.kind == tuned.kind
        assert len(restored) == len(tuned)
        for original, copy in zip(tuned, restored):
            assert len(copy.segments) == len(original.segments)
            for seg_a, seg_b in zip(original.segments, copy.segments):
                assert seg_b.attributes == seg_a.attributes
                assert seg_b.tight == seg_a.tight
                assert seg_b.n_tuples == pytest.approx(seg_a.n_tuples)
                for name in seg_a.tight:
                    assert seg_b.ranges[name] == seg_a.ranges[name]

    def test_queries_resolved_back(self, small_meta, small_workload, tuned):
        data = plan_to_dict(tuned, small_workload)
        restored = plan_from_dict(small_meta, data, small_workload)
        for original, copy in zip(tuned, restored):
            for seg_a, seg_b in zip(original.segments, copy.segments):
                assert {q.label for q in seg_b.queries} == {
                    q.label for q in seg_a.queries
                }

    def test_rematerialization_is_identical(
        self, small_table, small_meta, small_workload, tuned, tmp_path
    ):
        """The acid test: a reloaded plan materializes byte-identical files."""
        from repro.storage import BALOS_HDD, PartitionManager, StorageDevice

        path = str(tmp_path / "plan.json")
        save_plan(tuned, path, small_workload)
        restored = load_plan(small_meta, path, small_workload)

        first = PartitionManager(small_table.schema, StorageDevice(BALOS_HDD))
        second = PartitionManager(small_table.schema, StorageDevice(BALOS_HDD))
        first.materialize_plan(tuned, small_table)
        second.materialize_plan(restored, small_table)
        assert first.pids() == second.pids()
        for pid in first.pids():
            assert first.store.get(first.info(pid).key) == second.store.get(
                second.info(pid).key
            )

    def test_rejects_wrong_table(self, small_meta, tuned):
        data = plan_to_dict(tuned)
        data["table"] = "another_table"
        with pytest.raises(JigsawError):
            plan_from_dict(small_meta, data)

    def test_rejects_bad_version(self, small_meta, tuned):
        data = plan_to_dict(tuned)
        data["version"] = 99
        with pytest.raises(JigsawError):
            plan_from_dict(small_meta, data)
