"""Property-based tests (hypothesis) for the core invariants.

Covers: interval algebra, range-map intersection, segment splitting, the
partitioner's validity constraints, the binary format roundtrip, and
engine-vs-reference query equivalence on random tables and queries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CostModel,
    IOModel,
    JigsawPartitioner,
    PartitionerConfig,
    Query,
    Segment,
    TableSchema,
    Workload,
    horizontal_split,
)
from repro.core.ranges import Interval
from repro.engine import ScanExecutor
from repro.layouts import BuildContext, IrregularLayout
from repro.storage import (
    BALOS_HDD,
    ColumnTable,
    DeviceProfile,
    PhysicalPartition,
    PhysicalSegment,
    StorageDevice,
    checksum_overhead,
    deserialize_partition,
    serialize_partition,
)

# ---------------------------------------------------------------- intervals

interval_bounds = st.tuples(
    st.integers(-10_000, 10_000), st.integers(0, 10_000)
).map(lambda pair: Interval(float(pair[0]), float(pair[0] + pair[1])))


class TestIntervalProperties:
    @given(interval_bounds, interval_bounds)
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(interval_bounds, interval_bounds)
    def test_intersect_consistent_with_intersects(self, a, b):
        overlap = a.intersect(b)
        assert (overlap is not None) == a.intersects(b)
        if overlap is not None:
            assert a.covers(overlap) and b.covers(overlap)

    @given(interval_bounds, interval_bounds)
    def test_overlap_fraction_bounded(self, a, b):
        fraction = a.overlap_fraction(b, unit=1.0)
        assert 0.0 <= fraction <= 1.0

    @given(interval_bounds)
    def test_self_overlap_is_one(self, a):
        assert a.overlap_fraction(a, unit=1.0) == pytest.approx(1.0)

    @given(
        st.integers(-1000, 1000),
        st.integers(2, 2000),
        st.data(),
    )
    def test_integer_split_partitions_exactly(self, lo, width, data):
        interval = Interval(float(lo), float(lo + width))
        cut = data.draw(st.integers(lo, lo + width - 1))
        lower, upper = interval.split(cut, unit=1.0)
        # no gap, no overlap
        assert lower.hi + 1.0 == upper.lo
        assert lower.lo == interval.lo and upper.hi == interval.hi
        # widths add up
        assert lower.width(1.0) + upper.width(1.0) == pytest.approx(interval.width(1.0))


# ----------------------------------------------------------------- segments


class TestSplitProperties:
    @given(
        st.integers(10, 10_000),
        st.integers(0, 999),
        st.integers(1, 6),
    )
    @settings(max_examples=50)
    def test_horizontal_split_conserves_tuples(self, n_tuples, cut, n_attrs):
        names = [f"a{i}" for i in range(n_attrs)]
        schema = TableSchema.uniform(names)
        from repro.core import TableMeta

        table = TableMeta.from_bounds(
            "t", schema, n_tuples, {name: (0, 1000) for name in names}
        )
        segment = Segment(tuple(names), float(n_tuples), table.full_range())
        lower, upper = horizontal_split(segment, names[0], cut, schema.units())
        assert lower.n_tuples + upper.n_tuples == pytest.approx(float(n_tuples))
        assert lower.n_tuples >= 0 and upper.n_tuples >= 0


# --------------------------------------------------------------- partitioner


def _random_table(draw):
    n_attrs = draw(st.integers(2, 8))
    n_tuples = draw(st.integers(200, 3_000))
    seed = draw(st.integers(0, 2**16))
    names = [f"a{i}" for i in range(n_attrs)]
    schema = TableSchema.uniform(names)
    rng = np.random.default_rng(seed)
    columns = {
        name: rng.integers(0, 10_000, n_tuples).astype(np.int32) for name in names
    }
    return ColumnTable.build("t", schema, columns)


def _random_query(draw, table, label):
    names = list(table.schema.attribute_names)
    k = draw(st.integers(1, len(names)))
    indices = draw(
        st.lists(st.integers(0, len(names) - 1), min_size=k, max_size=k, unique=True)
    )
    select = [names[i] for i in indices]
    pred_attr = names[draw(st.integers(0, len(names) - 1))]
    lo = draw(st.integers(0, 9_000))
    hi = lo + draw(st.integers(0, 9_999 - lo))
    interval = table.meta.interval(pred_attr)
    lo = max(lo, int(interval.lo))
    hi = min(max(hi, lo), int(interval.hi))
    if hi < lo:
        lo = hi = int(interval.lo)
    return Query.build(table.meta, select, {pred_attr: (lo, hi)}, label=label)


@st.composite
def table_and_workload(draw):
    table = _random_table(draw)
    n_queries = draw(st.integers(1, 6))
    queries = [_random_query(draw, table, f"q{i}") for i in range(n_queries)]
    return table, Workload(table.meta, queries)


class TestPartitionerProperties:
    @given(table_and_workload())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_plan_valid_and_queries_correct(self, setup):
        """For random tables and workloads: the plan satisfies Formula 4's
        constraints, every cell is materialized exactly once, and the
        partition-at-a-time engine answers a training query exactly like a
        direct numpy evaluation."""
        table, workload = setup
        ctx = BuildContext(
            device_profile=DeviceProfile("flat", IOModel(alpha=1e-8, beta=1e-7)),
            file_segment_bytes=4 * 1024,
        )
        layout = IrregularLayout(selection_enabled=False).build(table, workload, ctx)
        layout.plan.validate_disjoint()
        layout.plan.validate_attribute_cover()

        cells = 0
        for pid in layout.manager.pids():
            info = layout.manager.info(pid)
            cells += sum(
                len(attrs) * len(tids)
                for attrs, tids in zip(info.segment_attrs, info.segment_tids)
            )
        assert cells == table.n_tuples * len(table.schema)

        query = workload[0]
        result, _stats = layout.execute(query)
        mask = np.ones(table.n_tuples, dtype=bool)
        for name, interval in query.where.items():
            column = table.column(name)
            mask &= (column >= interval.lo) & (column <= interval.hi)
        expected_tids = np.nonzero(mask)[0]
        assert np.array_equal(result.tuple_ids, expected_tids)
        for name in query.select:
            assert np.array_equal(
                result.column(name), table.column(name)[expected_tids]
            )


# -------------------------------------------------------------- file format


@st.composite
def physical_partitions(draw):
    n_attrs = draw(st.integers(1, 6))
    names = [f"a{i}" for i in range(n_attrs)]
    schema = TableSchema.uniform(names, byte_width=draw(st.sampled_from([4, 8, 12])))
    n_segments = draw(st.integers(1, 3))
    segments = []
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    for _ in range(n_segments):
        k = draw(st.integers(1, n_attrs))
        attrs = tuple(names[:k])
        n = draw(st.integers(0, 50))
        tids = np.sort(rng.choice(10_000, size=n, replace=False)).astype(np.int64)
        columns = {a: rng.integers(0, 1000, n).astype(np.int32) for a in attrs}
        segments.append(
            PhysicalSegment(attributes=attrs, tuple_ids=tids, columns=columns)
        )
    return schema, PhysicalPartition(pid=draw(st.integers(0, 1000)), segments=segments)


class TestFormatProperties:
    @given(physical_partitions())
    @settings(max_examples=50, deadline=None)
    def test_serialize_roundtrip(self, setup):
        schema, partition = setup
        data = serialize_partition(partition, schema)
        restored = deserialize_partition(data, schema)
        assert restored.pid == partition.pid
        assert len(restored.segments) == len(partition.segments)
        for original, copy in zip(partition.segments, restored.segments):
            assert copy.attributes == original.attributes
            assert np.array_equal(copy.tuple_ids, original.tuple_ids)
            for name in original.attributes:
                assert np.array_equal(copy.columns[name], original.columns[name])

    @given(physical_partitions())
    @settings(max_examples=30, deadline=None)
    def test_file_size_matches_disk_bytes_plus_headers(self, setup):
        schema, partition = setup
        data = serialize_partition(partition, schema)
        payload = partition.disk_bytes(schema)
        # v2: a 4-byte CRC follows the file header and each segment header.
        header_budget = 16 + len(partition.segments) * (17 + (len(schema) + 7) // 8)
        crc_budget = checksum_overhead(len(partition.segments))
        assert len(data) == payload + header_budget + crc_budget


# ------------------------------------------------------------ devices/cache


class TestDeviceProperties:
    @given(
        st.lists(st.tuples(st.text("ab", min_size=1, max_size=3),
                           st.integers(1, 10_000)), min_size=1, max_size=60),
        st.integers(0, 20_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_cache_never_exceeds_capacity(self, reads, capacity):
        device = StorageDevice(BALOS_HDD, cache_bytes=capacity)
        for key, size in reads:
            device.read(key, size)
            assert device.cached_bytes <= max(capacity, 0)

    @given(
        st.lists(st.integers(1, 10_000_000), min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_io_time_monotone_in_bytes(self, sizes):
        model = BALOS_HDD.io_model
        ordered = sorted(sizes)
        times = [model.io_time(size) for size in ordered]
        assert all(a <= b for a, b in zip(times, times[1:]))


# ---------------------------------------------------- differential oracle


class TestDifferentialOracleProperties:
    """Hypothesis drives random tables and workloads through the
    cross-engine differential oracle: every engine, over every layout
    family, must agree bit-for-bit with a direct numpy evaluation."""

    @given(table_and_workload())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_all_layouts_match_reference(self, setup):
        from repro.testing import oracle_check
        from repro.testing.oracle import ORACLE_LAYOUTS

        table, workload = setup
        ctx = BuildContext(file_segment_bytes=4096, schism_sample_size=200)
        for name, make in ORACLE_LAYOUTS:
            layout = make().build(table, workload, ctx)
            for query in workload:
                mismatch = oracle_check(layout, table, query)
                assert mismatch is None, f"[{name}] {mismatch}"

    @given(table_and_workload(), st.sampled_from(["locking", "shared"]))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_threaded_engine_matches_reference(self, setup, strategy):
        from repro.engine.parallel import ThreadedPartitionEngine
        from repro.layouts import IrregularLayout
        from repro.testing import run_reference_query

        table, workload = setup
        ctx = BuildContext(file_segment_bytes=4096)
        layout = IrregularLayout(selection_enabled=False).build(
            table, workload, ctx
        )
        engine = ThreadedPartitionEngine(
            layout.manager, table.meta, n_threads=3, strategy=strategy
        )
        query = workload[0]
        result = engine.execute(query)
        assert result.equals(run_reference_query(table, query))
