"""Tests for the SQL front end."""

import numpy as np
import pytest

from repro.errors import InvalidQueryError
from repro.sql import parse_query, parse_statement


class TestParsing:
    def test_basic_select_where(self, paper_table):
        query = parse_query(
            paper_table, "SELECT a2, a3 FROM T WHERE a1 BETWEEN 11 AND 13"
        )
        assert query.select == ("a2", "a3")
        assert query.predicate_interval("a1").lo == 11
        assert query.predicate_interval("a1").hi == 13

    def test_select_star(self, paper_table):
        query = parse_query(paper_table, "SELECT * FROM T")
        assert query.select == paper_table.attribute_names
        assert not query.where

    def test_case_insensitive_keywords(self, paper_table):
        query = parse_query(paper_table, "select a2 from T where a1 between 11 and 12")
        assert query.select == ("a2",)

    def test_equality_predicate(self, paper_table):
        query = parse_query(paper_table, "SELECT a2 FROM T WHERE a1 = 12")
        interval = query.predicate_interval("a1")
        assert (interval.lo, interval.hi) == (12, 12)

    def test_inequalities_on_integers(self, paper_table):
        lt = parse_query(paper_table, "SELECT a2 FROM T WHERE a1 < 14")
        assert lt.predicate_interval("a1").hi == 13
        gt = parse_query(paper_table, "SELECT a2 FROM T WHERE a1 > 12")
        assert gt.predicate_interval("a1").lo == 13
        le = parse_query(paper_table, "SELECT a2 FROM T WHERE a1 <= 14")
        assert le.predicate_interval("a1").hi == 14
        ge = parse_query(paper_table, "SELECT a2 FROM T WHERE a1 >= 12")
        assert ge.predicate_interval("a1").lo == 12

    def test_multiple_conjuncts(self, paper_table):
        query = parse_query(
            paper_table,
            "SELECT a2 FROM T WHERE a1 BETWEEN 11 AND 14 AND a4 >= 43 AND a6 = 63",
        )
        assert query.sigma_attributes == {"a1", "a4", "a6"}

    def test_repeated_attribute_intersects(self, paper_table):
        query = parse_query(
            paper_table, "SELECT a2 FROM T WHERE a1 >= 12 AND a1 <= 14"
        )
        interval = query.predicate_interval("a1")
        assert (interval.lo, interval.hi) == (12, 14)

    def test_contradictory_predicates_rejected(self, paper_table):
        with pytest.raises(InvalidQueryError):
            parse_query(paper_table, "SELECT a2 FROM T WHERE a1 > 14 AND a1 < 12")


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELECT FROM T",
            "SELECT a2 FROM WRONG",
            "SELECT a2 FROM T WHERE",
            "SELECT a2 FROM T WHERE zz = 1",
            "SELECT a2 FROM T WHERE a1 OR a2",
            "SELECT a2 FROM T WHERE a1 = 12 OR a4 = 43",
            "SELECT a2 FROM T WHERE a1 BETWEEN 14 AND 11",
            "SELECT a2 FROM T WHERE a1 = 12 garbage",
            "SELECT a2 FROM T WHERE a1 ! 12",
        ],
    )
    def test_rejected(self, paper_table, sql):
        with pytest.raises(InvalidQueryError):
            parse_query(paper_table, sql)

    def test_or_message_mentions_conjunctions(self, paper_table):
        with pytest.raises(InvalidQueryError, match="conjunction"):
            parse_query(paper_table, "SELECT a2 FROM T WHERE a1 = 12 OR a4 = 43")


class TestExplainStatements:
    def test_plain_select_statement(self, paper_table):
        statement = parse_statement(paper_table, "SELECT a2 FROM T WHERE a1 = 12")
        assert statement.explain is False
        assert statement.query.select == ("a2",)

    def test_explain_prefix_sets_the_flag(self, paper_table):
        statement = parse_statement(
            paper_table, "EXPLAIN SELECT a2 FROM T WHERE a1 = 12"
        )
        assert statement.explain is True
        assert statement.query.select == ("a2",)
        assert statement.query.predicate_interval("a1").lo == 12

    def test_explain_keyword_is_case_insensitive(self, paper_table):
        statement = parse_statement(paper_table, "explain select a2 from T")
        assert statement.explain is True

    def test_bare_explain_rejected(self, paper_table):
        with pytest.raises(InvalidQueryError, match="followed by a SELECT"):
            parse_statement(paper_table, "EXPLAIN")

    def test_explain_analyze_sets_both_flags(self, paper_table):
        statement = parse_statement(
            paper_table, "EXPLAIN ANALYZE SELECT a2 FROM T WHERE a1 = 12"
        )
        assert statement.explain is True
        assert statement.analyze is True
        assert statement.query.select == ("a2",)

    def test_plain_explain_does_not_analyze(self, paper_table):
        statement = parse_statement(
            paper_table, "EXPLAIN SELECT a2 FROM T"
        )
        assert statement.analyze is False

    def test_explain_analyze_case_insensitive(self, paper_table):
        statement = parse_statement(
            paper_table, "explain analyze select a2 from T"
        )
        assert statement.analyze is True

    def test_bare_explain_analyze_rejected(self, paper_table):
        with pytest.raises(InvalidQueryError, match="followed by a SELECT"):
            parse_statement(paper_table, "EXPLAIN ANALYZE")

    def test_analyze_without_explain_rejected(self, paper_table):
        with pytest.raises(InvalidQueryError, match="only valid after EXPLAIN"):
            parse_statement(paper_table, "ANALYZE SELECT a2 FROM T")

    def test_parse_query_refuses_explain(self, paper_table):
        with pytest.raises(InvalidQueryError, match="parse_statement"):
            parse_query(paper_table, "EXPLAIN SELECT a2 FROM T")

    def test_explain_statement_renders_a_report(self, small_table, small_workload, ctx):
        from repro.layouts import IrregularLayout

        layout = IrregularLayout().build(small_table, small_workload, ctx)
        statement = parse_statement(
            small_table.meta,
            "EXPLAIN SELECT a2 FROM T WHERE a1 BETWEEN 0 AND 1999",
        )
        text = layout.executor.explain(statement.query).render()
        assert text.startswith("EXPLAIN SELECT")
        assert "logical plan:" in text
        assert "physical plan:" in text


class TestAsOf:
    def test_default_is_none(self, paper_table):
        statement = parse_statement(paper_table, "SELECT a2 FROM T")
        assert statement.as_of is None

    def test_as_of_version_parses(self, paper_table):
        statement = parse_statement(
            paper_table, "SELECT a2 FROM T AS OF 3 WHERE a1 = 12"
        )
        assert statement.as_of == 3
        assert statement.query.select == ("a2",)
        assert statement.query.predicate_interval("a1").lo == 12

    def test_as_of_without_where(self, paper_table):
        statement = parse_statement(paper_table, "SELECT a2 FROM T AS OF 0")
        assert statement.as_of == 0
        assert not statement.query.where

    def test_as_of_is_case_insensitive(self, paper_table):
        statement = parse_statement(paper_table, "select a2 from T as of 7")
        assert statement.as_of == 7

    def test_explain_composes_with_as_of(self, paper_table):
        statement = parse_statement(
            paper_table, "EXPLAIN SELECT a2 FROM T AS OF 2 WHERE a1 = 12"
        )
        assert statement.explain is True
        assert statement.as_of == 2

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a2 FROM T AS OF",
            "SELECT a2 FROM T AS OF x",
            "SELECT a2 FROM T AS 3",
            "SELECT a2 FROM T AS OF -1",
            "SELECT a2 FROM T AS OF 1.5",
        ],
    )
    def test_malformed_as_of_rejected(self, paper_table, sql):
        with pytest.raises(InvalidQueryError):
            parse_statement(paper_table, sql)

    def test_fractional_version_message(self, paper_table):
        with pytest.raises(InvalidQueryError, match="non-negative integer"):
            parse_statement(paper_table, "SELECT a2 FROM T AS OF 1.5")


class TestEndToEnd:
    def test_parsed_query_runs_on_a_layout(self, small_table, small_workload, ctx):
        from repro.layouts import RowLayout

        layout = RowLayout().build(small_table, small_workload, ctx)
        query = parse_query(
            small_table.meta, "SELECT a2, a5 FROM T WHERE a1 BETWEEN 0 AND 1999"
        )
        result, _stats = layout.execute(query)
        mask = small_table.column("a1") <= 1999
        assert result.n_tuples == int(mask.sum())
        expected = small_table.column("a5")[np.nonzero(mask)[0]]
        assert np.array_equal(result.column("a5"), expected)


class TestToSql:
    def test_roundtrip(self, paper_table):
        from repro.sql import to_sql

        original = parse_query(
            paper_table,
            "SELECT a2, a5 FROM T WHERE a1 BETWEEN 11 AND 14 AND a4 >= 43",
        )
        rebuilt = parse_query(paper_table, to_sql(original, "T"))
        assert rebuilt.select == original.select
        assert {n: (i.lo, i.hi) for n, i in rebuilt.where.items()} == {
            n: (i.lo, i.hi) for n, i in original.where.items()
        }

    def test_no_where(self, paper_table):
        from repro.sql import to_sql

        query = parse_query(paper_table, "SELECT a1 FROM T")
        assert to_sql(query, "T") == "SELECT a1 FROM T"


class TestSqlProperty:
    def test_random_roundtrips(self, paper_table):
        """Property-style: random projections/predicates survive the
        SQL render -> parse roundtrip."""
        import numpy as np

        from repro.core import Query
        from repro.sql import to_sql

        rng = np.random.default_rng(7)
        names = paper_table.attribute_names
        for _ in range(50):
            k = int(rng.integers(1, len(names) + 1))
            select = list(rng.choice(names, size=k, replace=False))
            where = {}
            for name in rng.choice(names, size=int(rng.integers(0, 3)), replace=False):
                interval = paper_table.interval(name)
                lo = int(rng.integers(interval.lo, interval.hi + 1))
                hi = int(rng.integers(lo, interval.hi + 1))
                where[name] = (lo, hi)
            original = Query.build(paper_table, select, where)
            rebuilt = parse_query(paper_table, to_sql(original, paper_table.name))
            assert rebuilt.select == original.select
            assert {n: (i.lo, i.hi) for n, i in rebuilt.where.items()} == {
                n: (i.lo, i.hi) for n, i in original.where.items()
            }
