"""The relational SQL surface: grammar, pointed errors, round-tripping."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import TableSchema
from repro.errors import InvalidQueryError
from repro.plan.relational import AggSpec, ColumnRef, JoinCondition
from repro.sql import (
    parse_query,
    parse_relational_query,
    parse_relational_statement,
    parse_statement,
    relational_to_sql,
)
from repro.storage import ColumnTable
from repro.testing.join_oracle import random_join_query


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(9)
    fact = ColumnTable.build(
        "fact",
        TableSchema.uniform(["f_key", "f_a", "f_b"]),
        {
            "f_key": rng.integers(0, 400, 300).astype(np.int32),
            "f_a": rng.integers(0, 400, 300).astype(np.int32),
            "f_b": rng.integers(0, 400, 300).astype(np.int32),
        },
    )
    dim = ColumnTable.build(
        "dim",
        TableSchema.uniform(["d_key", "d_a"]),
        {
            "d_key": rng.integers(0, 400, 100).astype(np.int32),
            "d_a": rng.integers(0, 400, 100).astype(np.int32),
        },
    )
    return fact, dim


@pytest.fixture(scope="module")
def metas(tables):
    fact, dim = tables
    return {"fact": fact.meta, "dim": dim.meta}


class TestRelationalGrammar:
    def test_join_group_by_aggregates(self, metas):
        query = parse_relational_query(
            metas,
            "SELECT dim.d_a, SUM(fact.f_a), COUNT(*) "
            "FROM fact JOIN dim ON fact.f_key = dim.d_key "
            "WHERE fact.f_a BETWEEN 10 AND 90 GROUP BY dim.d_a",
        )
        assert query.tables == ("fact", "dim")
        assert query.joins == (
            JoinCondition(ColumnRef("fact", "f_key"), ColumnRef("dim", "d_key")),
        )
        assert query.where == {ColumnRef("fact", "f_a"): (10.0, 90.0)}
        assert query.select == (
            ColumnRef("dim", "d_a"),
            AggSpec("sum", ColumnRef("fact", "f_a")),
            AggSpec("count", None),
        )
        assert query.group_by == (ColumnRef("dim", "d_a"),)

    def test_bare_names_resolve_through_from(self, metas):
        # The select list is parsed after FROM, so unqualified unique
        # column names resolve to their owning table.
        query = parse_relational_query(
            metas,
            "SELECT f_a, d_a FROM fact JOIN dim ON f_key = d_key",
        )
        assert query.select == (ColumnRef("fact", "f_a"), ColumnRef("dim", "d_a"))
        assert query.joins[0].left == ColumnRef("fact", "f_key")

    def test_star_expands_in_from_order(self, metas):
        query = parse_relational_query(
            metas, "SELECT * FROM fact JOIN dim ON f_key = d_key"
        )
        assert query.select == (
            ColumnRef("fact", "f_key"),
            ColumnRef("fact", "f_a"),
            ColumnRef("fact", "f_b"),
            ColumnRef("dim", "d_key"),
            ColumnRef("dim", "d_a"),
        )

    def test_explain_analyze_flags(self, metas):
        statement = parse_relational_statement(
            metas,
            "EXPLAIN ANALYZE SELECT f_a FROM fact JOIN dim ON f_key = d_key",
        )
        assert statement.explain and statement.analyze
        plain = parse_relational_statement(
            metas, "SELECT f_a FROM fact JOIN dim ON f_key = d_key"
        )
        assert not plain.explain and not plain.analyze

    def test_comparison_operators_convert(self, metas, tables):
        fact, _ = tables
        query = parse_relational_query(
            metas,
            "SELECT f_a FROM fact JOIN dim ON f_key = d_key "
            "WHERE fact.f_a < 100 AND dim.d_a >= 50",
        )
        lo, hi = query.where[ColumnRef("fact", "f_a")]
        assert hi == 99.0  # integer column: strict < backs off one unit
        assert query.where[ColumnRef("dim", "d_a")][0] == 50.0


class TestPointedErrors:
    def test_single_table_join_names_relational_entry(self, tables):
        fact, _ = tables
        with pytest.raises(
            InvalidQueryError, match=r"parse_relational_statement\(\)"
        ):
            parse_statement(
                fact.meta, "SELECT f_a FROM fact JOIN dim ON f_key = d_key"
            )

    def test_single_table_group_by_names_relational_entry(self, tables):
        fact, _ = tables
        with pytest.raises(InvalidQueryError, match="GROUP BY is not supported"):
            parse_query(fact.meta, "SELECT f_a FROM fact GROUP BY f_a")

    def test_single_table_aggregate_names_relational_entry(self, tables):
        fact, _ = tables
        with pytest.raises(
            InvalidQueryError, match=r"aggregate SUM\(...\) is not supported"
        ):
            parse_query(fact.meta, "SELECT SUM(f_a) FROM fact")

    def test_outer_join_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="only\ninner|only inner"):
            parse_relational_query(
                metas,
                "SELECT f_a FROM fact LEFT JOIN dim ON f_key = d_key",
            )

    def test_comma_join_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="comma joins"):
            parse_relational_query(metas, "SELECT f_a FROM fact, dim")

    def test_missing_on_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="needs an ON condition"):
            parse_relational_query(metas, "SELECT f_a FROM fact JOIN dim")

    def test_non_equality_on_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="equality only"):
            parse_relational_query(
                metas, "SELECT f_a FROM fact JOIN dim ON f_key < d_key"
            )

    def test_self_join_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="self-joins"):
            parse_relational_query(
                metas, "SELECT f_a FROM fact JOIN fact ON f_key = f_a"
            )

    def test_ambiguous_bare_name_suggests_qualifying(self):
        rng = np.random.default_rng(0)
        a = ColumnTable.build(
            "a",
            TableSchema.uniform(["k", "x"]),
            {
                "k": rng.integers(0, 9, 10).astype(np.int32),
                "x": rng.integers(0, 9, 10).astype(np.int32),
            },
        )
        b = ColumnTable.build(
            "b",
            TableSchema.uniform(["k", "x"]),
            {
                "k": rng.integers(0, 9, 10).astype(np.int32),
                "x": rng.integers(0, 9, 10).astype(np.int32),
            },
        )
        metas = {"a": a.meta, "b": b.meta}
        with pytest.raises(InvalidQueryError, match=r"qualify it as <table>\.x"):
            parse_relational_query(metas, "SELECT x FROM a JOIN b ON a.k = b.k")

    def test_order_by_names_the_grammar_boundary(self, metas):
        with pytest.raises(InvalidQueryError, match="ends at GROUP BY"):
            parse_relational_query(
                metas,
                "SELECT dim.d_a, COUNT(*) FROM fact JOIN dim "
                "ON f_key = d_key GROUP BY dim.d_a ORDER BY dim.d_a",
            )

    def test_avg_star_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match=r"only COUNT\(\*\)"):
            parse_relational_query(
                metas, "SELECT AVG(*) FROM fact JOIN dim ON f_key = d_key"
            )

    def test_distinct_rejected(self, metas):
        with pytest.raises(InvalidQueryError, match="DISTINCT is not supported"):
            parse_relational_query(
                metas,
                "SELECT DISTINCT f_a FROM fact JOIN dim ON f_key = d_key",
            )

    def test_unknown_function_lists_supported(self, metas):
        with pytest.raises(InvalidQueryError, match="unknown function 'MEDIAN'"):
            parse_relational_query(
                metas,
                "SELECT MEDIAN(f_a) FROM fact JOIN dim ON f_key = d_key",
            )

    def test_unknown_table_lists_catalog(self, metas):
        with pytest.raises(InvalidQueryError, match="catalog has"):
            parse_relational_query(metas, "SELECT f_a FROM nope")


class TestRoundTrip:
    def test_fixed_round_trip(self, metas):
        sql = (
            "SELECT dim.d_a, sum(fact.f_a), count(*) "
            "FROM fact JOIN dim ON fact.f_key = dim.d_key "
            "WHERE fact.f_a BETWEEN 10 AND 90 GROUP BY dim.d_a"
        )
        query = parse_relational_query(metas, sql)
        assert parse_relational_query(metas, relational_to_sql(query)) == query

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**31 - 1))
    def test_random_queries_round_trip(self, seed, metas, tables):
        fact, dim = tables
        rng = np.random.default_rng(seed)
        query = random_join_query(rng, fact, dim, label="sql")
        rendered = relational_to_sql(query)
        parsed = parse_relational_query(metas, rendered)
        assert parsed == dataclasses.replace(query, label="sql")
