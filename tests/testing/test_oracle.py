"""The cross-engine differential oracle, including its acceptance bar:
200+ seeded random cases across every engine x layout combination."""

import numpy as np
import pytest

from repro.engine.result import ResultSet
from repro.errors import PartitionUnreadableError
from repro.layouts import BuildContext
from repro.storage import FaultConfig, RetryPolicy
from repro.testing import (
    inject_faults,
    oracle_check,
    pruning_check,
    pruning_executors,
    random_query,
    random_table,
    random_workload,
    run_differential_oracle,
    run_reference_query,
)
from repro.testing.oracle import ORACLE_LAYOUTS


class TestReference:
    def test_reference_matches_manual_evaluation(self):
        rng = np.random.default_rng(5)
        table = random_table(rng, n_attrs=3, n_tuples=200)
        query = random_query(rng, table)
        result = run_reference_query(table, query)
        mask = np.ones(table.n_tuples, dtype=bool)
        for name, interval in query.where.items():
            column = table.column(name)
            mask &= (column >= interval.lo) & (column <= interval.hi)
        expected = np.nonzero(mask)[0]
        assert np.array_equal(result.tuple_ids, expected)
        for name in query.select:
            assert np.array_equal(
                result.column(name), table.column(name)[expected]
            )

    def test_generators_are_seed_deterministic(self):
        t1 = random_table(np.random.default_rng(3))
        t2 = random_table(np.random.default_rng(3))
        assert t1.schema.attribute_names == t2.schema.attribute_names
        for name in t1.schema.attribute_names:
            assert np.array_equal(t1.column(name), t2.column(name))


class TestOracleCheck:
    def test_detects_a_lying_engine(self):
        rng = np.random.default_rng(9)
        table = random_table(rng, n_attrs=3, n_tuples=150)
        workload = random_workload(rng, table, n_queries=1)
        ctx = BuildContext(file_segment_bytes=2048)
        name, make = ORACLE_LAYOUTS[0]
        layout = make().build(table, workload, ctx)
        query = workload[0]
        assert oracle_check(layout, table, query) is None

        empty = ResultSet(np.empty(0, np.int64), {n: np.empty(0) for n in query.select})

        class Liar:
            def execute(self, _query):
                return empty, None

        layout.executor = Liar()
        mismatch = oracle_check(layout, table, query)
        assert mismatch is not None and "expected" in mismatch


class TestDifferentialOracle:
    def test_acceptance_200_cases_all_engines_all_layouts(self):
        """>= 200 seeded random (table, workload, query) cases must agree
        with the reference on every engine x layout combination."""
        report = run_differential_oracle(n_cases=200, seed=0)
        assert report.n_cases >= 200
        # 4 layouts + 1 threaded check per case.
        assert report.n_checks >= report.n_cases * 5
        assert report.ok, report.failures[:5]

    def test_different_seed_also_passes(self):
        report = run_differential_oracle(n_cases=20, seed=20260807)
        assert report.ok, report.failures[:5]

    def test_summary_mentions_counts(self):
        report = run_differential_oracle(n_cases=5, seed=1, threaded=False)
        assert "5 cases" in report.summary()
        assert "OK" in report.summary()


class TestPruningSweep:
    def test_pruning_invariants_hold_under_every_layout(self):
        """Pruning on vs. off: identical results, never more partitions."""
        rng = np.random.default_rng(11)
        table = random_table(rng, n_attrs=4, n_tuples=300)
        workload = random_workload(rng, table, n_queries=3)
        ctx = BuildContext(file_segment_bytes=2048)
        checked = 0
        for name, make in ORACLE_LAYOUTS:
            layout = make().build(table, workload, ctx)
            assert pruning_executors(layout) is not None, name
            for query in workload:
                failure = pruning_check(layout, table, query)
                assert failure is None, f"{name}: {failure}"
                checked += 1
        assert checked == len(ORACLE_LAYOUTS) * len(list(workload))

    def test_twins_share_storage_and_differ_only_in_pruning(self):
        rng = np.random.default_rng(12)
        table = random_table(rng, n_attrs=3, n_tuples=200)
        workload = random_workload(rng, table, n_queries=2)
        layout = dict(ORACLE_LAYOUTS)["irregular"]().build(
            table, workload, BuildContext(file_segment_bytes=2048)
        )
        off, on = pruning_executors(layout)
        assert off.manager is layout.manager
        assert on.manager is layout.manager
        assert off.planner.pruning is False
        assert on.planner.pruning is True

    def test_oracle_sweep_adds_one_check_per_layout_and_query(self):
        with_sweep = run_differential_oracle(
            n_cases=4, seed=2, threaded=False, pruning_sweep=True
        )
        without = run_differential_oracle(
            n_cases=4, seed=2, threaded=False, pruning_sweep=False
        )
        assert with_sweep.failures == []
        assert without.failures == []
        assert (
            with_sweep.n_checks
            == without.n_checks + with_sweep.n_cases * len(ORACLE_LAYOUTS)
        )


class TestOracleUnderFaults:
    def test_correct_or_abort_under_transient_storms(self):
        """End to end self-healing: with faults injected under every layout,
        each query either returns the exact reference result (possibly via
        retries/degraded reads) or raises PartitionUnreadableError.  Silence
        and wrong answers are both failures."""
        rng = np.random.default_rng(123)
        table = random_table(rng, n_attrs=4, n_tuples=300)
        workload = random_workload(rng, table, n_queries=3)
        ctx = BuildContext(file_segment_bytes=2048)
        outcomes = set()
        for name, make in ORACLE_LAYOUTS:
            layout = make().build(table, workload, ctx)
            layout.manager.retry_policy = RetryPolicy(max_attempts=4)
            store = inject_faults(
                layout,
                FaultConfig(transient_error_rate=0.3, latency_spike_rate=0.2),
                seed=7,
            )
            for query in workload:
                expected = run_reference_query(table, query)
                try:
                    result, stats = layout.execute(query)
                except PartitionUnreadableError:
                    outcomes.add("aborted")
                    continue
                assert result.equals(expected), f"{name}: wrong result under faults"
                outcomes.add("recovered")
                if stats.n_retries:
                    outcomes.add("retried")
            assert store.stats.n_transient_errors > 0
        # The storm must have actually exercised the retry path somewhere.
        assert "recovered" in outcomes
        assert "retried" in outcomes
