"""Fixtures for the write-path suite: a small transactional layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layouts import BuildContext, IrregularLayout
from repro.testing import random_table, random_workload
from repro.txn import TransactionalTable


def build_txn_table(
    seed: int = 7,
    n_attrs: int = 3,
    n_tuples: int = 300,
    wal_enabled: bool = True,
    builder=None,
):
    """One seeded (table, layout, TransactionalTable) triple."""
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_attrs=n_attrs, n_tuples=n_tuples)
    train = random_workload(rng, table, 4)
    layout = (builder or IrregularLayout()).build(
        table, train, BuildContext(file_segment_bytes=2048)
    )
    return table, layout, TransactionalTable(
        layout, table, wal_enabled=wal_enabled
    )


@pytest.fixture()
def txn_table():
    return build_txn_table()
