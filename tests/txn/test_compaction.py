"""Compaction: budget packing, the WAL checkpoint, and cache coherence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import Query
from repro.errors import TransactionError
from repro.serve import PartitionCache
from repro.testing import (
    ShadowTable,
    WriteWorkloadConfig,
    apply_random_batch,
    verify_against_shadow,
)
from repro.txn import DeltaCompactor

from .conftest import build_txn_table


def run_batches(txn, rng, n_batches=4):
    shadow = ShadowTable(txn.data)
    shadow.snapshot(txn.current_version)
    config = WriteWorkloadConfig()
    for _ in range(n_batches):
        apply_random_batch(txn, shadow, rng, config)
        shadow.snapshot(txn.commit())
    return shadow


class TestCompactionCorrectness:
    def test_every_version_oracle_exact_after_run_until_clean(self):
        _table, _layout, txn = build_txn_table(seed=41)
        rng = np.random.default_rng(41)
        shadow = run_batches(txn, rng)
        reports = DeltaCompactor(txn, verify=True).run_until_clean()
        assert reports and not reports[-1].is_empty
        state = txn.delta_state()
        assert not state.segments and not state.tombstones
        assert verify_against_shadow(txn, shadow, rng) == []

    def test_pure_tombstone_state_compacts_to_removal(self):
        _table, _layout, txn = build_txn_table(seed=42)
        txn.delete(tids=list(range(0, 10)))
        txn.commit()
        report = DeltaCompactor(txn, verify=True).run()
        assert report.n_segments_folded == 0
        assert report.n_tombstones_removed == 10
        assert report.n_tuples_dropped == 10
        state = txn.delta_state()
        assert not state.segments and not state.tombstones

    def test_rejects_nonpositive_budget(self):
        _table, _layout, txn = build_txn_table(seed=43)
        with pytest.raises(TransactionError):
            DeltaCompactor(txn, bytes_budget=0)


class TestBudget:
    def test_small_budget_defers_and_converges(self):
        _table, _layout, txn = build_txn_table(seed=44)
        rng = np.random.default_rng(44)
        run_batches(txn, rng)
        state = txn.delta_state()
        assert state.segments and state.tombstones
        # One unit of work per pass: big enough for the largest single
        # segment or dirty partition, too small for everything at once.
        unit = max(
            max(s.n_bytes for s in state.segments),
            max(
                txn.manager.info(pid).n_bytes
                for pid in txn.manager.pids()
            ),
        )
        compactor = DeltaCompactor(txn, bytes_budget=unit, verify=True)
        first = compactor.run()
        assert first.n_segments_deferred + first.n_partitions_deferred > 0
        mid = txn.delta_state()
        assert mid.segments or mid.tombstones  # work left behind
        reports = [first] + compactor.run_until_clean()
        state = txn.delta_state()
        assert not state.segments and not state.tombstones
        assert len(reports) > 1
        assert sum(r.n_segments_folded for r in reports) >= 1

    def test_undersized_budget_makes_no_progress_and_stops(self):
        _table, _layout, txn = build_txn_table(seed=45)
        rng = np.random.default_rng(45)
        run_batches(txn, rng, n_batches=2)
        compactor = DeltaCompactor(txn, bytes_budget=1, verify=True)
        reports = compactor.run_until_clean(max_passes=4)
        assert reports == []  # first pass is an is_empty no-op report
        state = txn.delta_state()
        assert state.segments or state.tombstones


class TestWalCheckpoint:
    def test_wal_truncates_only_when_state_is_clean(self):
        _table, _layout, txn = build_txn_table(seed=46)
        rng = np.random.default_rng(46)
        run_batches(txn, rng)
        state = txn.delta_state()
        assert len(state.segments) > 1
        # A budget that folds some-but-not-all: no checkpoint yet.
        unit = max(
            max(s.n_bytes for s in state.segments),
            max(
                txn.manager.info(pid).n_bytes
                for pid in txn.manager.pids()
            ),
        )
        compactor = DeltaCompactor(txn, bytes_budget=unit, verify=True)
        first = compactor.run()
        assert not first.wal_truncated
        assert txn.wal.replay() != []
        reports = compactor.run_until_clean()
        assert reports[-1].wal_truncated
        assert txn.wal.replay() == []


class TestCacheCoherence:
    def test_mid_replay_compaction_never_serves_stale_verdict(self):
        """The regression from the issue: an ``AS OF`` replay pinned before
        a compaction must keep hitting its snapshot-token entries, while
        live plans after the swap can never reuse pre-swap verdicts."""
        table, layout, txn = build_txn_table(seed=47)
        planner = layout.executor.planner
        cache = PartitionCache(txn.manager)
        planner.partition_cache = cache
        names = list(table.schema.attribute_names)
        meta = txn.data.meta
        query = Query.build(meta, names, {"a1": (200, 800)}, label="hot")

        v0 = txn.current_version
        hold = txn.pin(v0)
        pinned_first, _ = txn.execute(query, as_of=v0)
        assert cache.stats.n_records >= 1

        rng = np.random.default_rng(47)
        shadow = run_batches(txn, rng, n_batches=1)
        live_before, _ = txn.execute(query)  # records under the v1 token

        # More writes, then the compaction swap bumps the catalog.
        run_batches(txn, rng, n_batches=1)
        report = DeltaCompactor(txn, verify=True).run()
        assert not report.is_empty
        assert cache.stats.n_invalidated > 0  # unpinned tokens purged

        # Live read after the swap: fresh verdicts, dense-reference exact.
        live_after, _ = txn.execute(query)
        visible = txn._visible_mask(txn.current_version)
        a1 = txn.data.column("a1")
        expected = np.nonzero(visible & (a1 >= 200) & (a1 <= 800))[0]
        assert np.array_equal(live_after.tuple_ids, expected)

        # Pinned replay still hits its own token and is byte-identical.
        hits_before = cache.stats.n_hits
        pinned_again, _ = txn.execute(query, as_of=v0)
        assert cache.stats.n_hits > hits_before
        assert np.array_equal(
            pinned_again.tuple_ids, pinned_first.tuple_ids
        )
        for name in names:
            assert np.array_equal(
                pinned_again.columns[name], pinned_first.columns[name]
            )
        hold.release()
