"""MVCC snapshot pinning, retention, and read stability under churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptiveConfig, AdaptiveDaemon, AdvisorConfig
from repro.core import TableSchema, Workload
from repro.core.query import Query
from repro.errors import SnapshotUnavailableError
from repro.layouts import BuildContext, IrregularLayout
from repro.storage import ColumnTable
from repro.txn import DeltaCompactor, TransactionalTable

from .conftest import build_txn_table


class TestPinning:
    def test_pin_defaults_to_current_version(self, txn_table):
        _table, _layout, txn = txn_table
        manager = txn.manager
        with manager.pin_snapshot() as snapshot:
            assert snapshot.version == manager.catalog_version
            assert manager.snapshot_refcount() == 1
        assert manager.snapshot_refcount() == 0

    def test_release_is_one_shot(self, txn_table):
        _table, _layout, txn = txn_table
        snapshot = txn.manager.pin_snapshot()
        snapshot.release()
        snapshot.release()  # second release is a no-op, not a double-decr
        assert txn.manager.snapshot_refcount() == 0

    def test_future_version_rejected(self, txn_table):
        _table, _layout, txn = txn_table
        with pytest.raises(SnapshotUnavailableError):
            txn.manager.pin_snapshot(txn.manager.catalog_version + 1)

    def test_snapshot_freezes_pid_set_across_swaps(self, txn_table):
        table, _layout, txn = txn_table
        manager = txn.manager
        snapshot = manager.pin_snapshot()
        before = set(snapshot.pids)
        rng = np.random.default_rng(0)
        tids = txn.insert({
            name: rng.integers(0, 1000, 10).astype(np.int32)
            for name in table.schema.attribute_names
        })
        txn.commit()
        txn.delete(tids=tids[:3])
        txn.commit()
        DeltaCompactor(txn, verify=True).run()
        assert set(snapshot.pids) == before
        assert set(manager.pids()) != before
        snapshot.release()

    def test_pruned_version_becomes_unpinnable(self, txn_table):
        table, _layout, txn = txn_table
        manager = txn.manager
        old_version = manager.catalog_version
        rng = np.random.default_rng(1)
        txn.delete(tids=[0, 1])
        txn.commit()
        DeltaCompactor(txn, verify=True).run()
        manager.prune_retired()
        assert manager.floor_version() > old_version
        with pytest.raises(SnapshotUnavailableError):
            manager.pin_snapshot(old_version)

    def test_prune_is_clamped_by_pins(self, txn_table):
        table, _layout, txn = txn_table
        manager = txn.manager
        snapshot = manager.pin_snapshot()
        txn.delete(tids=[0, 1])
        txn.commit()
        DeltaCompactor(txn, verify=True).run()
        manager.prune_retired()
        # The pinned version's partitions must still be servable.
        for pid in snapshot.pids:
            manager.info(pid)
        names = list(table.schema.attribute_names)
        query = Query.build(txn.data.meta, names, {}, label="pinned")
        result, _ = txn.execute(query, as_of=snapshot.version)
        assert result.n_tuples == 300
        snapshot.release()
        manager.prune_retired()
        with pytest.raises(SnapshotUnavailableError):
            manager.pin_snapshot(snapshot.version)


class TestReadStability:
    def test_pinned_reads_identical_through_write_compact_migrate(self):
        """The acceptance bar: a query pinned to version V returns
        byte-identical results before, during, and after writes,
        compaction, and an adaptive-daemon migration."""
        rng = np.random.default_rng(11)
        schema = TableSchema.uniform([f"a{i}" for i in range(1, 9)])
        names = list(schema.attribute_names)
        table = ColumnTable.build("T", schema, {
            name: rng.integers(0, 10_000, 5_000).astype(np.int32)
            for name in names
        })
        meta = table.meta
        train = Workload(meta, [
            Query.build(meta, ["a2", "a3"], {"a1": (0, 1999)}, label="Q1"),
            Query.build(meta, ["a2", "a3"], {"a4": (5000, 9999)}, label="Q2"),
            Query.build(meta, ["a5"], {"a6": (4000, 4999)}, label="Q3"),
        ])
        layout = IrregularLayout().build(
            table, train, BuildContext(file_segment_bytes=8 * 1024)
        )
        txn = TransactionalTable(layout, table)
        version = txn.current_version
        # Hold a pin for the whole test: the daemon's auto_prune and the
        # compactor both retire partitions, and the pin is what keeps
        # version V servable through them.
        hold = txn.pin(version)
        queries = list(train.queries) + [
            Query.build(meta, names, {}, label="full")
        ]
        baseline = [txn.execute(q, as_of=version) for q in queries]

        def check(stage):
            for query, (expected, _stats) in zip(queries, baseline):
                result, _ = txn.execute(query, as_of=version)
                assert np.array_equal(
                    result.tuple_ids, expected.tuple_ids
                ), stage
                for name, values in expected.columns.items():
                    got = result.columns[name]
                    assert got.dtype == values.dtype, stage
                    assert np.array_equal(got, values), stage

        # Writes.
        tids = txn.insert({
            name: rng.integers(0, 10_000, 60).astype(np.int32)
            for name in names
        })
        txn.delete(tids=list(range(0, 25)))
        txn.commit()
        txn.update({"a1": 7}, tids=tids[:5].tolist())
        txn.commit()
        check("after writes")

        # Drift the workload onto attributes the layout was never tuned
        # for and let the adaptive daemon migrate the live catalog while
        # delta segments and tombstones are still outstanding.
        daemon = AdaptiveDaemon(layout, txn.data, AdaptiveConfig(
            window_size=32,
            advisor=AdvisorConfig(drift_threshold=0.2, drift_reset=0.1,
                                  min_improvement=0.01, cooldown_queries=4),
            bytes_budget_per_cycle=1 << 30,
        ))
        shifted = [
            Query.build(meta, ["a7", "a8"], {"a7": (0, 2999)}, label="S1"),
            Query.build(meta, ["a7", "a8"], {"a8": (7000, 9999)}, label="S2"),
        ]
        for query in train.queries:
            layout.execute(query)
        for _ in range(16):
            for query in shifted:
                layout.execute(query)
        cycle = daemon.run_cycle()
        assert cycle.fired, cycle.reason
        check("after migration")

        # Current-version reads stay duplicate-free and complete even
        # though the migrated boxes absorbed delta-era rows into base
        # partitions that their segments still serve.
        def check_current(stage):
            visible = txn._visible_mask(txn.current_version)
            full = Query.build(txn.data.meta, names, {}, label="now")
            now, _ = txn.execute(full)
            assert np.array_equal(
                now.tuple_ids, np.nonzero(visible)[0]
            ), stage
            a7 = txn.data.column("a7")
            pred, _ = txn.execute(shifted[0])
            expected_tids = np.nonzero(visible & (a7 >= 0) & (a7 <= 2999))[0]
            assert np.array_equal(pred.tuple_ids, expected_tids), stage

        check_current("current reads after migration")

        # Fold the outstanding deltas into the migrated catalog.
        report = DeltaCompactor(txn, verify=True).run()
        assert not report.is_empty
        check("after compaction")
        check_current("current reads after compaction")

        # More writes on the migrated, compacted layout.
        txn.delete(tids=tids[10:15].tolist())
        txn.commit()
        check("after post-migration writes")
        hold.release()

    def test_as_of_matches_every_retained_version(self):
        table, _layout, txn = build_txn_table(seed=13)
        rng = np.random.default_rng(13)
        names = list(table.schema.attribute_names)
        expected_by_version = {}
        full = Query.build(table.meta, names, {}, label="full")
        expected_by_version[txn.current_version] = txn.execute(full)[0]
        for _ in range(4):
            txn.insert({
                name: rng.integers(0, 1000, 15).astype(np.int32)
                for name in names
            })
            visible = np.nonzero(
                txn._visible_mask(txn.current_version)
            )[0]
            txn.delete(tids=rng.choice(visible, 5, replace=False))
            version = txn.commit()
            expected_by_version[version] = txn.execute(full)[0]
        for version, expected in expected_by_version.items():
            result, _ = txn.execute(full, as_of=version)
            assert np.array_equal(result.tuple_ids, expected.tuple_ids)
            for name in names:
                assert np.array_equal(
                    result.columns[name], expected.columns[name]
                )

    def test_snapshot_refcount_gauge(self, txn_table):
        from repro import obs

        _table, _layout, txn = txn_table
        obs.enable(trace=False, metrics=True)
        try:
            s1 = txn.pin()
            s2 = txn.pin()
            obs.publish_txn(txn)
            registry = obs.get_registry()
            gauge = registry.gauge(
                "jigsaw_txn_snapshot_refcount",
                "Currently pinned MVCC snapshots",
            )
            assert gauge.value() == 2
            s1.release()
            s2.release()
            obs.publish_txn(txn)
            assert gauge.value() == 0
        finally:
            obs.disable()
