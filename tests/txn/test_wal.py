"""WAL unit tests and the crash-recovery hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schema import TableSchema
from repro.errors import TransactionError
from repro.storage import MemoryBlobStore
from repro.txn import (
    KIND_DELETE,
    KIND_INSERT,
    KIND_UPDATE,
    WriteAheadLog,
)

SCHEMA = TableSchema.uniform(["a1", "a2"])


def make_wal(store=None) -> WriteAheadLog:
    return WriteAheadLog(store or MemoryBlobStore(), SCHEMA)


def rows(rng, n):
    return {
        "a1": rng.integers(0, 100, n).astype(np.int32),
        "a2": rng.integers(0, 100, n).astype(np.int32),
    }


def records_equal(a, b) -> bool:
    if a.kind != b.kind or a.lsn != b.lsn:
        return False
    if not np.array_equal(a.tids, b.tids):
        return False
    if (a.old_tids is None) != (b.old_tids is None):
        return False
    if a.old_tids is not None and not np.array_equal(a.old_tids, b.old_tids):
        return False
    if (a.columns is None) != (b.columns is None):
        return False
    if a.columns is not None:
        for name in SCHEMA.attribute_names:
            if not np.array_equal(a.columns[name], b.columns[name]):
                return False
    return True


class TestWalBasics:
    def test_roundtrip_all_record_kinds(self):
        rng = np.random.default_rng(0)
        wal = make_wal()
        r1 = wal.append(KIND_INSERT, np.arange(5), rows(rng, 5))
        r2 = wal.append(KIND_DELETE, np.array([1, 3]))
        r3 = wal.append(
            KIND_UPDATE, np.array([5, 6]), rows(rng, 2),
            old_tids=np.array([0, 2]),
        )
        seq = wal.commit()
        assert seq == 1
        replayed = make_wal(wal.store).replay()
        assert len(replayed) == 3
        for original, recovered in zip((r1, r2, r3), replayed):
            assert records_equal(original, recovered)

    def test_empty_commit_writes_nothing(self):
        wal = make_wal()
        assert wal.commit() == -1
        assert list(wal.store.keys()) == []
        assert wal.stats.n_empty_commits == 1

    def test_lsn_is_monotonic_across_batches(self):
        rng = np.random.default_rng(1)
        wal = make_wal()
        wal.append(KIND_INSERT, np.arange(2), rows(rng, 2))
        wal.commit()
        wal.append(KIND_DELETE, np.array([0]))
        wal.commit()
        lsns = [r.lsn for r in wal.replay()]
        assert lsns == sorted(lsns) == list(range(1, 3))

    def test_discard_pending_is_rollback(self):
        rng = np.random.default_rng(2)
        wal = make_wal()
        wal.append(KIND_INSERT, np.arange(3), rows(rng, 3))
        assert wal.discard_pending() == 1
        assert wal.commit() == -1
        assert wal.replay() == []

    def test_append_validates_payloads(self):
        wal = make_wal()
        with pytest.raises(TransactionError):
            wal.append(KIND_INSERT, np.arange(3))  # no rows
        with pytest.raises(TransactionError):
            wal.append(KIND_UPDATE, np.arange(1),
                       {"a1": np.zeros(1, np.int32),
                        "a2": np.zeros(1, np.int32)})  # no old_tids
        with pytest.raises(TransactionError):
            wal.append("upsert", np.arange(1))

    def test_truncate_through_drops_applied_batches(self):
        rng = np.random.default_rng(3)
        wal = make_wal()
        wal.append(KIND_INSERT, np.arange(2), rows(rng, 2))
        wal.commit()
        wal.append(KIND_DELETE, np.array([0]))
        wal.commit()
        assert wal.truncate_through(1) == 1
        remaining = wal.replay()
        assert [r.lsn for r in remaining] == [2]

    def test_new_log_over_existing_store_continues_sequence(self):
        rng = np.random.default_rng(4)
        wal = make_wal()
        wal.append(KIND_INSERT, np.arange(2), rows(rng, 2))
        wal.commit()
        fresh = make_wal(wal.store)
        fresh.replay()
        fresh.append(KIND_DELETE, np.array([1]))
        seq = fresh.commit()
        assert seq == 2
        assert [r.lsn for r in make_wal(wal.store).replay()] == [1, 2]


class TestWalCrashRecovery:
    def _committed_log(self, seed, n_batches):
        rng = np.random.default_rng(seed)
        wal = make_wal()
        per_batch = []
        for _ in range(n_batches):
            k = int(rng.integers(1, 4))
            for _ in range(k):
                n = int(rng.integers(1, 6))
                wal.append(KIND_INSERT, rng.integers(0, 50, n), rows(rng, n))
            wal.commit()
            per_batch.append(k)
        return wal, per_batch

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 999), n_batches=st.integers(1, 5),
           cut=st.integers(1, 200))
    def test_torn_tail_recovers_to_last_group_commit(
        self, seed, n_batches, cut
    ):
        """Truncating the last batch blob at ANY byte boundary loses exactly
        that batch — everything before it replays intact."""
        wal, per_batch = self._committed_log(seed, n_batches)
        last_key = wal.batch_keys()[-1]
        blob = wal.store.get(last_key)
        wal.store.put(last_key, blob[:min(cut, len(blob) - 1)])
        recovered = make_wal(wal.store).replay()
        assert len(recovered) == sum(per_batch[:-1])
        intact = make_wal(wal.store)
        intact.store.put(last_key, blob)
        assert len(intact.replay()) == sum(per_batch)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 999), n_batches=st.integers(1, 4))
    def test_replay_is_idempotent_and_order_preserving(
        self, seed, n_batches
    ):
        wal, _ = self._committed_log(seed, n_batches)
        first = wal.replay()
        second = wal.replay()
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert records_equal(a, b)
        assert [r.lsn for r in first] == sorted(r.lsn for r in first)

    def test_corrupt_record_rejects_whole_batch(self):
        rng = np.random.default_rng(5)
        wal = make_wal()
        wal.append(KIND_INSERT, np.arange(3), rows(rng, 3))
        wal.commit()
        wal.append(KIND_INSERT, np.arange(3, 6), rows(rng, 3))
        wal.commit()
        key = wal.batch_keys()[-1]
        blob = bytearray(wal.store.get(key))
        blob[-1] ^= 0xFF  # flip a payload byte: record CRC must catch it
        wal.store.put(key, bytes(blob))
        recovered = make_wal(wal.store).replay()
        assert [r.lsn for r in recovered] == [1]

    def test_missing_middle_batch_stops_replay(self):
        wal, per_batch = self._committed_log(6, 3)
        wal.store.delete(wal.batch_keys()[1])
        recovered = make_wal(wal.store).replay()
        assert len(recovered) == per_batch[0]
