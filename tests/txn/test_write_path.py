"""Shadow-oracle write workloads: engines x layouts, faults, crash replay."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.query import Query
from repro.engine.parallel import ThreadedPartitionEngine
from repro.errors import TransactionError
from repro.layouts import (
    BuildContext,
    ColumnLayout,
    IrregularLayout,
    ReplicatedIrregularLayout,
)
from repro.storage import FaultConfig
from repro.testing import (
    ShadowTable,
    WriteWorkloadConfig,
    apply_random_batch,
    random_table,
    random_workload,
    verify_against_shadow,
)
from repro.testing.oracle import inject_faults
from repro.txn import DeltaCompactor, TransactionalTable

CONFIG = WriteWorkloadConfig(n_batches=5)

LAYOUTS = [
    ("irregular", lambda: IrregularLayout(selection_enabled=False)),
    ("column", ColumnLayout),
    ("replicated", lambda: ReplicatedIrregularLayout(selection_enabled=False)),
]


def build(
    seed,
    builder=None,
    wal_enabled=True,
    fault_config=None,
    threaded=False,
    n_tuples=250,
):
    rng = np.random.default_rng(seed)
    table = random_table(rng, n_attrs=3, n_tuples=n_tuples)
    train = random_workload(rng, table, 4)
    make = builder or (lambda: IrregularLayout(selection_enabled=False))
    layout = make().build(
        table, train, BuildContext(file_segment_bytes=2048)
    )
    if threaded:
        layout.executor = ThreadedPartitionEngine(
            layout.manager, table.meta, n_threads=2
        )
    if fault_config is not None:
        # Wrap BEFORE the transactional table so the WAL (and delta store)
        # write through the faulting store too.
        inject_faults(layout, config=fault_config, seed=seed)
    txn = TransactionalTable(layout, table, wal_enabled=wal_enabled)
    return rng, table, layout, txn


def run_workload(txn, rng, config=CONFIG, compact_at=None):
    """Seeded batches with commits; optional mid-stream compaction.

    Returns the shadow with one visibility snapshot per committed version.
    """
    shadow = ShadowTable(txn.data)
    shadow.snapshot(txn.current_version)
    for batch in range(config.n_batches):
        apply_random_batch(txn, shadow, rng, config)
        version = txn.commit()
        shadow.snapshot(version)
        if compact_at is not None and batch == compact_at:
            DeltaCompactor(txn, verify=True).run()
    return shadow


class TestWorkloadOracle:
    @pytest.mark.parametrize(
        "builder", [make for _, make in LAYOUTS],
        ids=[name for name, _ in LAYOUTS],
    )
    def test_snapshot_reads_oracle_exact_every_version(self, builder):
        rng, _table, _layout, txn = build(21, builder=builder)
        shadow = run_workload(txn, rng, compact_at=2)
        mismatches = verify_against_shadow(txn, shadow, rng)
        assert mismatches == []

    def test_threaded_engine_sees_identical_merged_reads(self):
        rng, _table, _layout, txn = build(22, threaded=True)
        shadow = run_workload(txn, rng, compact_at=1)
        mismatches = verify_against_shadow(txn, shadow, rng)
        assert mismatches == []

    def test_oracle_exact_under_storage_faults(self):
        """Transient faults + latency spikes under every read and write:
        the retry policy absorbs them and snapshots stay oracle-exact."""
        rng, _table, _layout, txn = build(
            23,
            fault_config=FaultConfig(
                transient_error_rate=0.05, latency_spike_rate=0.05,
                latency_spike_s=0.0,
            ),
        )
        shadow = run_workload(txn, rng, compact_at=2)
        mismatches = verify_against_shadow(txn, shadow, rng)
        assert mismatches == []

    def test_wal_off_workload_still_oracle_exact(self):
        rng, _table, _layout, txn = build(24, wal_enabled=False)
        shadow = run_workload(txn, rng)
        assert verify_against_shadow(txn, shadow, rng) == []
        with pytest.raises(TransactionError):
            txn.replay_wal()


class TestCrashReplay:
    def _copy_wal(self, source, target):
        for key in source.wal.batch_keys():
            target.manager.store.put(key, source.wal.store.get(key))

    def test_replay_recovers_all_committed_batches(self):
        rng, _t1, _l1, txn1 = build(31)
        shadow = run_workload(txn1, rng)
        # "Crash": a second, identically seeded process comes up with only
        # the base files and the durable WAL blobs.
        _rng2, _t2, _l2, txn2 = build(31)
        self._copy_wal(txn1, txn2)
        applied = txn2.replay_wal()
        assert applied == txn1._applied_lsn
        final = max(shadow.history)
        names = list(shadow.schema.attribute_names)
        full = Query.build(txn2.data.meta, names, {}, label="recovered")
        result, _ = txn2.execute(full)
        expected_tids = np.nonzero(shadow.mask_at(final))[0]
        assert np.array_equal(result.tuple_ids, expected_tids)
        for name in names:
            assert np.array_equal(
                result.columns[name], shadow.columns[name][expected_tids]
            )

    def test_torn_tail_recovers_to_previous_commit(self):
        rng, _t1, _l1, txn1 = build(32)
        shadow = run_workload(txn1, rng)
        versions = sorted(shadow.history)
        _rng2, _t2, _l2, txn2 = build(32)
        self._copy_wal(txn1, txn2)
        # Tear the last group commit mid-record.
        last_key = txn1.wal.batch_keys()[-1]
        blob = txn1.wal.store.get(last_key)
        txn2.manager.store.put(last_key, blob[: len(blob) // 2])
        txn2.replay_wal()
        durable = versions[-2]  # every batch is one commit = one version
        names = list(shadow.schema.attribute_names)
        full = Query.build(txn2.data.meta, names, {}, label="torn")
        result, _ = txn2.execute(full)
        expected_tids = np.nonzero(shadow.mask_at(durable))[0]
        assert np.array_equal(result.tuple_ids, expected_tids)
        for name in names:
            assert np.array_equal(
                result.columns[name], shadow.columns[name][expected_tids]
            )

    def test_replay_is_idempotent_on_a_live_table(self):
        rng, _t1, _l1, txn1 = build(33)
        run_workload(txn1, rng)
        before = txn1.current_version
        assert txn1.replay_wal() == 0  # nothing beyond the applied LSN
        assert txn1.current_version == before


class TestDeltaMergeProperty:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 9999))
    def test_merged_scan_equals_eager_materialization(self, seed):
        """Property: for any seeded write history, the delta-merged scan of
        every retained version is byte-for-byte the dense numpy shadow."""
        config = WriteWorkloadConfig(n_batches=3, max_ops=2,
                                     max_insert_rows=12)
        rng, _table, _layout, txn = build(seed, n_tuples=120)
        shadow = run_workload(txn, rng, config=config, compact_at=1)
        mismatches = verify_against_shadow(txn, shadow, rng, n_queries=1)
        assert mismatches == []
