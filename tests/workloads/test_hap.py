"""Unit tests for the HAP benchmark generator."""

import numpy as np
import pytest

from repro.errors import InvalidQueryError
from repro.workloads.hap import (
    NARROW_ATTRS,
    VALUE_MAX,
    WIDE_ATTRS,
    hap_templates,
    hap_workload,
    make_hap_table,
)


class TestTable:
    def test_wide_table_shape(self):
        table = make_hap_table(1000, seed=1)
        assert table.n_tuples == 1000
        assert len(table.schema) == WIDE_ATTRS
        assert all(spec.byte_width == 4 for spec in table.schema)

    def test_narrow_table(self):
        table = make_hap_table(500, n_attrs=NARROW_ATTRS, seed=1)
        assert len(table.schema) == 16

    def test_values_are_uniform_ints_in_range(self):
        table = make_hap_table(20_000, n_attrs=4, seed=2)
        column = table.column("a000")
        assert column.dtype == np.int32
        assert column.min() >= 0 and column.max() <= VALUE_MAX
        # Roughly uniform: the mean of U[0, VALUE_MAX] is VALUE_MAX/2.
        assert abs(column.mean() / (VALUE_MAX / 2) - 1.0) < 0.05

    def test_deterministic_for_seed(self):
        a = make_hap_table(100, n_attrs=4, seed=9)
        b = make_hap_table(100, n_attrs=4, seed=9)
        assert np.array_equal(a.column("a002"), b.column("a002"))


class TestTemplates:
    def test_template_shape(self):
        table = make_hap_table(1000, n_attrs=32, seed=3)
        rng = np.random.default_rng(4)
        templates = hap_templates(table.meta, projectivity=8, n_templates=3, rng=rng)
        assert len(templates) == 3
        for template in templates:
            assert len(template.projected) == 8
            # paper: the predicate attribute is one of the projected ones
            assert template.predicate_attribute in template.projected

    def test_bad_projectivity_rejected(self):
        table = make_hap_table(100, n_attrs=8, seed=3)
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidQueryError):
            hap_templates(table.meta, projectivity=0, n_templates=1, rng=rng)
        with pytest.raises(InvalidQueryError):
            hap_templates(table.meta, projectivity=9, n_templates=1, rng=rng)


class TestWorkload:
    def test_selectivity_is_respected(self):
        table = make_hap_table(50_000, n_attrs=8, seed=5)
        workload, _templates = hap_workload(
            table.meta, selectivity=0.25, projectivity=4, n_templates=1,
            n_queries=10, seed=6,
        )
        for query in workload:
            (attr, interval), = query.where.items()
            matches = (
                (table.column(attr) >= interval.lo) & (table.column(attr) <= interval.hi)
            ).mean()
            assert matches == pytest.approx(0.25, abs=0.03)

    def test_templates_reused_across_workloads(self):
        table = make_hap_table(1000, n_attrs=16, seed=7)
        train, templates = hap_workload(
            table.meta, 0.1, 4, 2, 10, seed=8
        )
        eval_wl, same = hap_workload(
            table.meta, 0.1, 4, 2, 5, seed=9, templates=templates
        )
        assert same is templates
        train_projections = {q.pi_attributes for q in train}
        eval_projections = {q.pi_attributes for q in eval_wl}
        assert eval_projections <= train_projections

    def test_bad_selectivity_rejected(self):
        table = make_hap_table(100, n_attrs=8, seed=3)
        with pytest.raises(InvalidQueryError):
            hap_workload(table.meta, 0.0, 4, 1, 1)
        with pytest.raises(InvalidQueryError):
            hap_workload(table.meta, 1.5, 4, 1, 1)

    def test_full_selectivity_selects_everything(self):
        table = make_hap_table(5_000, n_attrs=8, seed=5)
        workload, _t = hap_workload(
            table.meta, selectivity=1.0, projectivity=2, n_templates=1,
            n_queries=3, seed=6,
        )
        for query in workload:
            (attr, interval), = query.where.items()
            assert interval.lo <= table.meta.interval(attr).lo
            assert interval.hi >= table.meta.interval(attr).hi
