"""Unit tests for the TPC-H substrate: dbgen, denormalization, templates."""

import numpy as np
import pytest

from repro.errors import InvalidQueryError
from repro.workloads.tpch import (
    DENORM_SCHEMA,
    NATION_TO_REGION,
    NATIONS,
    PART_TYPES,
    REGIONS,
    RETURN_FLAGS,
    SEGMENTS,
    Dictionary,
    date_of,
    days,
    denormalize,
    generate_tpch,
    tpch_workload,
)


@pytest.fixture(scope="module")
def db():
    return generate_tpch(scale_factor=0.002, seed=3)


@pytest.fixture(scope="module")
def denorm(db):
    return denormalize(db)


class TestEncoding:
    def test_calendar_roundtrip(self):
        assert days(1992, 1, 1) == 0
        assert date_of(days(1995, 6, 17)).isoformat() == "1995-06-17"

    def test_dictionary_is_sorted_and_bijective(self):
        d = Dictionary(["b", "a", "c"])
        assert d.values == ("a", "b", "c")
        assert d.code("b") == 1 and d.value(1) == "b"
        assert "a" in d and "z" not in d

    def test_dictionary_rejects_duplicates(self):
        with pytest.raises(InvalidQueryError):
            Dictionary(["x", "x"])

    def test_unknown_value_raises(self):
        with pytest.raises(InvalidQueryError):
            SEGMENTS.code("NOPE")

    def test_promo_prefix_is_contiguous(self):
        lo, hi = PART_TYPES.prefix_range("PROMO")
        assert hi - lo + 1 == 25  # 5 x 5 PROMO types
        assert all(PART_TYPES.value(c).startswith("PROMO") for c in range(lo, hi + 1))

    def test_cardinalities_match_spec(self):
        assert len(NATIONS) == 25
        assert len(REGIONS) == 5
        assert len(PART_TYPES) == 150
        assert len(SEGMENTS) == 5
        assert len(RETURN_FLAGS) == 3

    def test_nation_region_mapping(self):
        assert NATION_TO_REGION[NATIONS.code("FRANCE")] == REGIONS.code("EUROPE")
        assert NATION_TO_REGION[NATIONS.code("BRAZIL")] == REGIONS.code("AMERICA")
        # Each region has exactly 5 nations.
        counts = {}
        for region in NATION_TO_REGION.values():
            counts[region] = counts.get(region, 0) + 1
        assert all(count == 5 for count in counts.values())


class TestDbgen:
    def test_cardinality_ratios(self, db):
        assert db.customer.n_tuples == 300  # 150_000 x 0.002
        assert db.orders.n_tuples == 3_000
        assert db.supplier.n_tuples == 20
        assert db.part.n_tuples == 400
        # 1-7 lineitems per order, mean ~4
        ratio = db.lineitem.n_tuples / db.orders.n_tuples
        assert 3.0 < ratio < 5.0

    def test_foreign_keys_resolve(self, db):
        assert db.orders.column("o_custkey").max() <= db.customer.n_tuples
        assert db.lineitem.column("l_partkey").max() <= db.part.n_tuples
        assert db.lineitem.column("l_suppkey").max() <= db.supplier.n_tuples

    def test_dates_in_spec_window(self, db):
        orderdates = db.orders.column("o_orderdate")
        assert orderdates.min() >= 0
        assert orderdates.max() <= days(1998, 8, 2)
        shipdates = db.lineitem.column("l_shipdate")
        order_of_line = db.orders.column("o_orderdate")[
            db.lineitem.column("l_orderkey") - 1
        ]
        deltas = shipdates - order_of_line
        assert deltas.min() >= 1 and deltas.max() <= 121

    def test_returnflag_correlated_with_dates(self, db):
        """'R' only before the 1995-06-17 receipt cutoff, as in dbgen."""
        flags = db.lineitem.column("l_returnflag")
        ship = db.lineitem.column("l_shipdate")
        r_code = RETURN_FLAGS.code("R")
        late = ship > days(1995, 6, 17)  # shipped after cutoff => received after
        assert not np.any(flags[late] == r_code)

    def test_discounts_in_range(self, db):
        discount = db.lineitem.column("l_discount")
        assert discount.min() >= 0.0 and discount.max() <= 0.10

    def test_rejects_bad_scale(self):
        with pytest.raises(InvalidQueryError):
            generate_tpch(0.0)


class TestDenormalize:
    def test_19_attributes(self, denorm):
        assert len(denorm.schema) == 19
        assert denorm.schema == DENORM_SCHEMA

    def test_row_count_matches_lineitem(self, db, denorm):
        assert denorm.n_tuples == db.lineitem.n_tuples

    def test_paper_projection_widths(self):
        """Q3 projects 36 bytes/tuple, Q10 projects 254 (paper, Section 6.3.1)."""
        q3 = ["l_orderkey", "l_extendedprice", "l_discount", "o_orderdate", "o_shippriority"]
        q10 = [
            "c_custkey", "c_name", "l_extendedprice", "l_discount", "c_acctbal",
            "n_name", "c_address", "c_phone", "c_comment",
        ]
        assert DENORM_SCHEMA.row_width(q3) == 36
        assert DENORM_SCHEMA.row_width(q10) == 254

    def test_join_values_consistent(self, db, denorm):
        """Spot-check the lineitem -> orders -> customer join chain."""
        idx = 7
        orderkey = int(denorm.column("l_orderkey")[idx])
        custkey = int(db.orders.column("o_custkey")[orderkey - 1])
        assert int(denorm.column("c_custkey")[idx]) == custkey
        nation = int(db.customer.column("c_nationkey")[custkey - 1])
        assert int(denorm.column("n_name")[idx]) == nation
        assert int(denorm.column("r_name")[idx]) == NATION_TO_REGION[nation]


class TestTemplates:
    def test_workload_round_robins_templates(self, denorm):
        workload = tpch_workload(denorm.meta, 10, seed=1)
        labels = [q.label.split("-")[0] for q in workload]
        assert labels == ["Q3", "Q6", "Q8", "Q10", "Q14"] * 2

    def test_unknown_template_rejected(self, denorm):
        with pytest.raises(InvalidQueryError):
            tpch_workload(denorm.meta, 2, template_names=["Q99"])

    def test_q3_filters_and_projection(self, denorm):
        (query,) = tpch_workload(denorm.meta, 1, seed=2, template_names=["Q3"])
        assert query.sigma_attributes == {"c_mktsegment", "o_orderdate", "l_shipdate"}
        assert len(query.select) == 5

    def test_q10_filters_and_projection(self, denorm):
        (query,) = tpch_workload(denorm.meta, 1, seed=2, template_names=["Q10"])
        assert query.sigma_attributes == {"o_orderdate", "l_returnflag"}
        assert len(query.select) == 9

    def test_q14_promo_range(self, denorm):
        (query,) = tpch_workload(denorm.meta, 1, seed=2, template_names=["Q14"])
        interval = query.predicate_interval("p_type")
        lo, hi = PART_TYPES.prefix_range("PROMO")
        assert (interval.lo, interval.hi) == (lo, hi)

    def test_q6_is_highly_selective(self, denorm):
        (query,) = tpch_workload(denorm.meta, 1, seed=4, template_names=["Q6"])
        ship = query.predicate_interval("l_shipdate")
        assert 360 <= ship.hi - ship.lo <= 366  # one ship year
        discount = query.predicate_interval("l_discount")
        assert discount.hi - discount.lo < 0.03

    def test_queries_have_matches_at_small_scale(self, denorm):
        """Every template should usually select something even at SF 0.002."""
        workload = tpch_workload(denorm.meta, 10, seed=5)
        total = 0
        for query in workload:
            mask = np.ones(denorm.n_tuples, dtype=bool)
            for name, interval in query.where.items():
                column = denorm.column(name)
                mask &= (column >= interval.lo) & (column <= interval.hi)
            total += int(mask.sum())
        assert total > 0
